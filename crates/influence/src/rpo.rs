//! The RPO algorithm (paper Algorithm 1 + Section III-E).
//!
//! RPO decides how many RRR sets are enough for the `(1 − ε)`
//! approximation of worker propagation to hold with probability
//! `1 − |W|^{−o}`:
//!
//! 1. Walk the candidate thresholds `K = {|W|/2, |W|/4, …, 2}`. For each
//!    `kᵢ`, sample the iteration-based lower bound
//!    `NR(kᵢ) = (2 + 2ε*/3)(ln|W| + ln(1/λ*)) |W| / (ε*² kᵢ)` sets
//!    (Lemma 6) with `ε* = √2 ε` and `λ* = 1/(|W|^o log₂|W|)`.
//! 2. Find the greedy informed worker `wᶿ` and test
//!    `N_p^opt ≥ γ = (1 + ε*) kᵢ`. On success, `σ(wᵗ) ≥ N_p^opt·kᵢ/γ`
//!    holds w.h.p.; this lower bound feeds the threshold-based bound
//!    `N'_R(γ) = 2|W| ln(1/λ) / (σ_LB ε²)` (Lemma 5) with `λ = |W|^{−o}`.
//! 3. Top the pool up to `N'_R(γ)` sets if the current pool is smaller.
//!
//! The returned pool serves *all* source workers (the sampling phase of
//! Algorithm 1 does not depend on `w_s`; see `crate::pool`).

use crate::network::SocialNetwork;
use crate::parallel::Parallelism;
use crate::pool::{PropagationModel, RrrPool};
use rand::Rng;
use std::time::Instant;

/// Parameters of the RPO estimator.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RpoParams {
    /// Approximation slack `ε` (paper default 0.1).
    pub epsilon: f64,
    /// Confidence exponent `o` in `λ = |W|^{−o}` (paper default 1).
    pub o: f64,
    /// Hard cap on pool size. When the cap binds, [`RpoStats::capped`]
    /// is set and the approximation guarantee may not hold;
    /// `usize::MAX` disables the cap. Because top-ups are incremental
    /// (sets are seeded per index, so growing a pool resamples
    /// nothing), raising the cap only ever pays for the *additional*
    /// sets — budget it against memory (`≈ avg-set-size × 4 bytes` per
    /// set, doubled by the membership index), not resampling time, and
    /// note that the extra sets are sampled at full [`RpoParams::threads`]
    /// width.
    pub max_sets: usize,
    /// Diffusion model the RRR sets are sampled under (the paper uses
    /// weighted-cascade IC; Linear Threshold is provided as an
    /// extension).
    pub model: PropagationModel,
    /// Sampling thread budget. Results are bit-identical at any value —
    /// sets are seeded per index — so this knob trades wall time only.
    pub threads: Parallelism,
}

impl Default for RpoParams {
    fn default() -> Self {
        RpoParams {
            epsilon: 0.1,
            o: 1.0,
            max_sets: 1_000_000,
            model: PropagationModel::WeightedCascade,
            threads: Parallelism::Auto,
        }
    }
}

impl RpoParams {
    /// `ε* = √2 · ε`, the minimizer of `max{N'_R(γ), NR(kᵢ)}`.
    pub fn epsilon_star(&self) -> f64 {
        std::f64::consts::SQRT_2 * self.epsilon
    }

    /// `λ = |W|^{−o}`.
    pub fn lambda(&self, n_workers: usize) -> f64 {
        (n_workers.max(2) as f64).powf(-self.o)
    }

    /// `λ* = 1 / (|W|^o · log₂|W|)`.
    pub fn lambda_star(&self, n_workers: usize) -> f64 {
        let n = n_workers.max(2) as f64;
        1.0 / (n.powf(self.o) * n.log2())
    }

    /// Iteration-based lower bound `NR(kᵢ)` on the number of RRR sets
    /// (Lemma 6).
    pub fn nr(&self, n_workers: usize, k: f64) -> f64 {
        let n = n_workers.max(2) as f64;
        let es = self.epsilon_star();
        (2.0 + 2.0 * es / 3.0) * (n.ln() + (1.0 / self.lambda_star(n_workers)).ln()) * n
            / (es * es * k.max(1.0))
    }

    /// Threshold-based lower bound `N'_R(γ)` given a lower bound on
    /// `σ(wᵗ)` (Lemma 5).
    pub fn nr_prime(&self, n_workers: usize, sigma_lower: f64) -> f64 {
        let n = n_workers.max(2) as f64;
        2.0 * n * (1.0 / self.lambda(n_workers)).ln()
            / (sigma_lower.max(1.0) * self.epsilon * self.epsilon)
    }
}

/// Diagnostics of an RPO run.
///
/// Equality ignores the wall-clock fields (`search_ms`, `topup_ms`) so
/// that determinism tests can compare whole stats across runs and
/// thread counts.
#[derive(Debug, Clone, Copy)]
pub struct RpoStats {
    /// Final pool size `N`.
    pub n_sets: usize,
    /// Total sets sampled across all phases, accumulated per extension.
    /// With incremental top-up this equals [`RpoStats::n_sets`] — no set
    /// is ever resampled; any future divergence between the two numbers
    /// flags resampling waste.
    pub sets_sampled: usize,
    /// Halving rounds executed (size of the prefix of `K` visited).
    pub rounds: usize,
    /// The threshold `kᵢ` at which the test `N_p^opt ≥ γ` passed
    /// (or the last one tried).
    pub k_final: f64,
    /// Whether the threshold test passed before `K` was exhausted.
    pub test_passed: bool,
    /// The derived lower bound on `σ(wᵗ)`.
    pub sigma_lower_bound: f64,
    /// The threshold-based bound `N'_R(γ)` at termination.
    pub nr_prime: f64,
    /// Whether the `max_sets` cap limited the pool.
    pub capped: bool,
    /// The resolved sampling thread *budget*. Small extensions may run
    /// on fewer shards (see [`RrrPool::MIN_SETS_PER_SHARD`]); results
    /// are identical either way.
    pub threads: usize,
    /// Wall time of the halving/search phase (Algorithm 1 steps 1–2), ms.
    pub search_ms: f64, // lint: timing
    /// Wall time of the final top-up phase (Algorithm 1 step 3), ms.
    pub topup_ms: f64, // lint: timing
}

impl PartialEq for RpoStats {
    fn eq(&self, other: &Self) -> bool {
        self.n_sets == other.n_sets
            && self.sets_sampled == other.sets_sampled
            && self.rounds == other.rounds
            && self.k_final == other.k_final
            && self.test_passed == other.test_passed
            && self.sigma_lower_bound == other.sigma_lower_bound
            && self.nr_prime == other.nr_prime
            && self.capped == other.capped
        // threads / search_ms / topup_ms are run conditions, not results.
    }
}

/// Snapshot serde mirrors the equality contract: the deterministic
/// diagnostics round-trip, the run conditions (`threads`) travel for
/// reference, and the wall-clock fields are written as zero so the same
/// trained model always snapshots to the same bytes.
impl serde::Serialize for RpoStats {
    fn to_value(&self) -> serde::json::Value {
        serde::json::Value::Object(vec![
            ("n_sets".to_string(), self.n_sets.to_value()),
            ("sets_sampled".to_string(), self.sets_sampled.to_value()),
            ("rounds".to_string(), self.rounds.to_value()),
            ("k_final".to_string(), self.k_final.to_value()),
            ("test_passed".to_string(), self.test_passed.to_value()),
            (
                "sigma_lower_bound".to_string(),
                self.sigma_lower_bound.to_value(),
            ),
            ("nr_prime".to_string(), self.nr_prime.to_value()),
            ("capped".to_string(), self.capped.to_value()),
            ("threads".to_string(), self.threads.to_value()),
        ])
    }
}

impl serde::Deserialize for RpoStats {
    fn from_value(value: &serde::json::Value) -> Result<Self, serde::Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::expected("rpo-stats object", value))?;
        Ok(RpoStats {
            n_sets: serde::get_field(obj, "n_sets")?,
            sets_sampled: serde::get_field(obj, "sets_sampled")?,
            rounds: serde::get_field(obj, "rounds")?,
            k_final: serde::get_field(obj, "k_final")?,
            test_passed: serde::get_field(obj, "test_passed")?,
            sigma_lower_bound: serde::get_field(obj, "sigma_lower_bound")?,
            nr_prime: serde::get_field(obj, "nr_prime")?,
            capped: serde::get_field(obj, "capped")?,
            threads: serde::get_field(obj, "threads")?,
            search_ms: 0.0,
            topup_ms: 0.0,
        })
    }
}

/// The RPO pool builder.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rpo {
    params: RpoParams,
}

impl Rpo {
    /// Creates a builder with the given parameters.
    pub fn new(params: RpoParams) -> Self {
        Rpo { params }
    }

    /// The parameters.
    pub fn params(&self) -> &RpoParams {
        &self.params
    }

    /// Runs Algorithm 1, drawing the master seed from `rng`.
    ///
    /// Compatibility wrapper: the caller's RNG contributes exactly one
    /// `u64`, then [`Rpo::build_pool_seeded`] does the work.
    pub fn build_pool<R: Rng + ?Sized>(
        &self,
        net: &SocialNetwork,
        rng: &mut R,
    ) -> (RrrPool, RpoStats) {
        self.build_pool_seeded(net, rng.next_u64())
    }

    /// Runs Algorithm 1 with an explicit master seed and returns the
    /// pool plus diagnostics.
    ///
    /// The pool is bit-identical for a fixed `master_seed` at any
    /// [`RpoParams::threads`] setting, and grows **incrementally**: each
    /// halving round and the final top-up extend the previous round's
    /// pool (per-index seeding makes an extension equal a from-scratch
    /// build of the larger size), so across the whole run every set is
    /// sampled exactly once.
    ///
    /// Reusing rounds' sets introduces a mild dependence between the
    /// adaptive stopping test and the final estimates — the trade-off
    /// every incremental IMM-family sampler makes (fresh pools per
    /// round would multiply sampling cost by the round count). The
    /// practical effect at the paper's parameters is well inside the
    /// ε-slack; callers needing strictly independent decision/estimation
    /// samples can run two builds with distinct master seeds and use
    /// one pool per role.
    pub fn build_pool_seeded(&self, net: &SocialNetwork, master_seed: u64) -> (RrrPool, RpoStats) {
        let n = net.n_workers();
        let threads = self.params.threads.resolve();
        if n < 2 {
            // Degenerate networks: a handful of sets is exact.
            let t0 = Instant::now();
            let pool = RrrPool::generate_sharded(net, n, self.params.model, master_seed, 1);
            return (
                pool,
                RpoStats {
                    n_sets: n,
                    sets_sampled: n,
                    rounds: 0,
                    k_final: 0.0,
                    test_passed: true,
                    sigma_lower_bound: n as f64,
                    nr_prime: 0.0,
                    capped: false,
                    // Degenerate pools are forced onto one thread above.
                    threads: 1,
                    search_ms: t0.elapsed().as_secs_f64() * 1e3,
                    topup_ms: 0.0,
                },
            );
        }

        let p = &self.params;
        let mut k = n as f64 / 2.0;
        let mut rounds = 0usize;
        let mut capped = false;
        let mut sets_sampled = 0usize;
        let mut pool = RrrPool::generate_sharded(net, 0, p.model, master_seed, threads);

        let search_start = Instant::now();
        let (sigma_lb, test_passed) = loop {
            rounds += 1;
            let want = p.nr(n, k).ceil() as usize;
            let n_gen = want.min(p.max_sets);
            capped |= n_gen < want;
            let before = pool.n_sets();
            pool.extend_to(net, n_gen, threads);
            sets_sampled += pool.n_sets() - before;

            let gamma = (1.0 + p.epsilon_star()) * k;
            let n_opt = pool.greedy_informed_worker().map(|(_, v)| v).unwrap_or(0.0);
            if n_opt >= gamma {
                // Lemma 6: σ(wᵗ) ≥ kᵢ w.h.p.; refine to N_p^opt·kᵢ/γ.
                break ((n_opt * k / gamma).max(1.0), true);
            }
            k /= 2.0;
            if k < 2.0 || capped {
                // K exhausted: keep the densest pool generated; the root
                // always covers itself, so σ(wᵗ) ≥ 1 is a valid bound.
                break ((n_opt * k.max(2.0) / gamma).max(1.0), false);
            }
        };
        let search_ms = search_start.elapsed().as_secs_f64() * 1e3;

        // Threshold-based bound; top the pool up if it is short. Only
        // the missing sets are sampled and indexed.
        let topup_start = Instant::now();
        let nr_prime = p.nr_prime(n, sigma_lb);
        let target = (nr_prime.ceil() as usize).min(p.max_sets);
        capped |= (nr_prime.ceil() as usize) > p.max_sets;
        let before = pool.n_sets();
        pool.extend_to(net, target, threads);
        sets_sampled += pool.n_sets() - before;
        let topup_ms = topup_start.elapsed().as_secs_f64() * 1e3;

        let stats = RpoStats {
            n_sets: pool.n_sets(),
            sets_sampled,
            rounds,
            k_final: k,
            test_passed,
            sigma_lower_bound: sigma_lb,
            nr_prime,
            capped,
            threads,
            search_ms,
            topup_ms,
        };
        (pool, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ring_net(n: usize) -> SocialNetwork {
        // Directed ring: every node has indegree 1 → deterministic
        // cascades covering the whole ring → very large σ.
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        SocialNetwork::from_directed_edges(n, &edges)
    }

    fn sparse_net(n: usize, seed: u64) -> SocialNetwork {
        use rand::RngExt;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut edges = Vec::new();
        for v in 1..n as u32 {
            let u = rng.random_range(0..v);
            edges.push((u, v));
            if rng.random_bool(0.3) {
                let u2 = rng.random_range(0..v);
                edges.push((u2, v));
            }
        }
        SocialNetwork::from_directed_edges(n, &edges)
    }

    #[test]
    fn nr_bound_decreases_in_k() {
        let p = RpoParams::default();
        let n = 1000;
        assert!(p.nr(n, 500.0) < p.nr(n, 250.0));
        assert!(p.nr(n, 4.0) < p.nr(n, 2.0));
    }

    #[test]
    fn nr_prime_decreases_in_sigma() {
        let p = RpoParams::default();
        assert!(p.nr_prime(1000, 100.0) < p.nr_prime(1000, 10.0));
    }

    #[test]
    fn epsilon_star_is_sqrt2_epsilon() {
        let p = RpoParams {
            epsilon: 0.2,
            ..Default::default()
        };
        assert!((p.epsilon_star() - 0.2 * std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn lambda_values_match_paper() {
        let p = RpoParams::default(); // o = 1
        assert!((p.lambda(1000) - 1e-3).abs() < 1e-12);
        let expect = 1.0 / (1000.0 * 1000.0f64.log2());
        assert!((p.lambda_star(1000) - expect).abs() < 1e-15);
    }

    #[test]
    fn high_influence_network_passes_test_early() {
        // Ring cascades inform everyone: σ(wᵗ) = n, so k = n/2 passes
        // immediately and a single round suffices.
        let net = ring_net(64);
        let mut rng = SmallRng::seed_from_u64(1);
        let (pool, stats) = Rpo::new(RpoParams::default()).build_pool(&net, &mut rng);
        assert!(stats.test_passed);
        assert_eq!(stats.rounds, 1);
        assert!(stats.sigma_lower_bound > 16.0);
        assert!(pool.n_sets() >= (stats.nr_prime as usize).min(RpoParams::default().max_sets));
    }

    #[test]
    fn sparse_network_halves_before_passing() {
        let net = sparse_net(256, 7);
        let mut rng = SmallRng::seed_from_u64(2);
        let (pool, stats) = Rpo::new(RpoParams {
            max_sets: 200_000,
            ..Default::default()
        })
        .build_pool(&net, &mut rng);
        assert!(stats.rounds >= 1);
        assert!(pool.n_sets() > 0);
        assert!(stats.sigma_lower_bound >= 1.0);
        // Incremental growth never resamples: across all halving rounds
        // and the top-up, exactly the final pool was sampled.
        assert_eq!(stats.sets_sampled, pool.n_sets());
    }

    #[test]
    fn cap_is_respected_and_reported() {
        let net = sparse_net(128, 3);
        let mut rng = SmallRng::seed_from_u64(3);
        let (pool, stats) = Rpo::new(RpoParams {
            max_sets: 500,
            ..Default::default()
        })
        .build_pool(&net, &mut rng);
        assert!(pool.n_sets() <= 500);
        assert!(stats.capped);
    }

    #[test]
    fn degenerate_networks() {
        let mut rng = SmallRng::seed_from_u64(4);
        let empty = SocialNetwork::from_directed_edges(0, &[]);
        let (pool, stats) = Rpo::default().build_pool(&empty, &mut rng);
        assert_eq!(pool.n_sets(), 0);
        assert!(stats.test_passed);

        let single = SocialNetwork::from_directed_edges(1, &[]);
        let (pool, _) = Rpo::default().build_pool(&single, &mut rng);
        assert_eq!(pool.n_sets(), 1);
    }

    #[test]
    fn estimates_from_rpo_pool_track_ground_truth() {
        use crate::cascade::IndependentCascade;
        let net = sparse_net(64, 11);
        let mut rng = SmallRng::seed_from_u64(51);
        let (pool, _) = Rpo::new(RpoParams {
            epsilon: 0.1,
            o: 1.0,
            max_sets: 400_000,
            ..Default::default()
        })
        .build_pool(&net, &mut rng);

        let ic = IndependentCascade::new(&net);
        let mut rng2 = SmallRng::seed_from_u64(6);
        // Check a handful of workers' σ against forward Monte Carlo.
        for seed in [0u32, 5, 20, 40] {
            let truth = ic.estimate_spread(seed, 40_000, &mut rng2);
            let est = pool.sigma(seed);
            let tol = (0.15 * truth).max(0.4);
            assert!(
                (est - truth).abs() < tol,
                "σ({seed}): pool {est} vs forward {truth}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let net = sparse_net(64, 13);
        let (a, sa) = Rpo::default().build_pool(&net, &mut SmallRng::seed_from_u64(7));
        let (b, sb) = Rpo::default().build_pool(&net, &mut SmallRng::seed_from_u64(7));
        assert_eq!(sa, sb);
        assert_eq!(a.n_sets(), b.n_sets());
    }
}

#[cfg(test)]
mod lt_tests {
    use super::*;
    use crate::cascade::LinearThreshold;
    use crate::pool::PropagationModel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rpo_builds_linear_threshold_pools() {
        use rand::RngExt;
        let mut rng = SmallRng::seed_from_u64(31);
        let mut edges = Vec::new();
        for v in 1..64u32 {
            edges.push((rng.random_range(0..v), v));
        }
        let net = SocialNetwork::from_directed_edges(64, &edges);
        let (pool, stats) = Rpo::new(RpoParams {
            max_sets: 100_000,
            model: PropagationModel::LinearThreshold,
            ..Default::default()
        })
        .build_pool(&net, &mut rng);
        assert!(pool.n_sets() > 100);
        assert!(stats.sigma_lower_bound >= 1.0);

        // σ estimates from the LT pool track forward LT simulation.
        let lt = LinearThreshold::new(&net);
        let mut rng2 = SmallRng::seed_from_u64(32);
        for seed in [0u32, 5, 20] {
            let truth = lt.estimate_spread(seed, 6_000, &mut rng2);
            let est = pool.sigma(seed);
            let tol = (0.15 * truth).max(0.5);
            assert!(
                (est - truth).abs() < tol,
                "LT σ({seed}): pool {est} vs forward {truth}"
            );
        }
    }
}
