//! Figure 9: effect of |S| on BK — CPU time, assigned tasks, AI, AP,
//! travel cost for MTA / IA / EIA / DIA / MI.

#![forbid(unsafe_code)]
fn main() {
    sc_bench::comparison_figure(
        "fig09",
        "BK",
        sc_bench::AxisSel::Tasks,
        "Effect of |S| on BK (five metrics, five algorithms)",
    );
}
