//! Figure 6: effect of |W| on the AI of the IA ablation variants.

#![forbid(unsafe_code)]
fn main() {
    sc_bench::ablation_figure(
        "fig06",
        "BK",
        sc_bench::AxisSel::Workers,
        "Effect of |W| on Average Influence (ablation, BK)",
    );
    sc_bench::ablation_figure(
        "fig06",
        "FS",
        sc_bench::AxisSel::Workers,
        "Effect of |W| on Average Influence (ablation, FS)",
    );
}
