//! Figure 11: effect of |W| on BK.

#![forbid(unsafe_code)]
fn main() {
    sc_bench::comparison_figure(
        "fig11",
        "BK",
        sc_bench::AxisSel::Workers,
        "Effect of |W| on BK (five metrics, five algorithms)",
    );
}
