//! Figure 11: effect of |W| on BK.
fn main() {
    sc_bench::comparison_figure(
        "fig11",
        "BK",
        sc_bench::AxisSel::Workers,
        "Effect of |W| on BK (five metrics, five algorithms)",
    );
}
