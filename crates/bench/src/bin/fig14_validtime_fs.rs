//! Figure 14: effect of φ on FS.

#![forbid(unsafe_code)]
fn main() {
    sc_bench::comparison_figure(
        "fig14",
        "FS",
        sc_bench::AxisSel::ValidTime,
        "Effect of phi on FS (five metrics, five algorithms)",
    );
}
