//! Figure 16: effect of r on FS.

#![forbid(unsafe_code)]
fn main() {
    sc_bench::comparison_figure(
        "fig16",
        "FS",
        sc_bench::AxisSel::Radius,
        "Effect of r on FS (five metrics, five algorithms)",
    );
}
