//! Per-round scoring throughput across thread counts → `BENCH_round.json`.
//!
//! PR 2/3 parallelized training (sharded RRR sampling) and sweeps
//! (chunked sweep points); this binary measures the third axis —
//! **intra-point parallelism**: the scoring passes *inside* one online
//! round (eligibility sharding, influence-cache warming, the per-pair
//! influence scan), all scheduled through `sc_stats::par` under the
//! pipeline's thread budget.
//!
//! One pipeline is trained once; per thread count a clone is re-budgeted
//! via [`sc_core::DitaPipeline::set_threads`] (no retrain — results are
//! bit-identical by contract) and driven through an identical scripted
//! arrival stream with a frozen pool, timing only the rounds. The
//! binary asserts the [`sc_sim::RoundReport`]s of every budget equal
//! the single-thread run report-for-report, and — on a host with ≥ 4
//! cores — that 4 threads deliver at least a 2× per-round speedup.
//!
//! ```text
//! cargo run --release -p sc-bench --bin bench_round
//! DITA_BENCH_COHORT=2000 DITA_BENCH_TASKS=400 cargo run --release -p sc-bench --bin bench_round
//! ```
//!
//! Speedups are only meaningful on a multi-core host; the JSON records
//! `host_threads` (and whether the floor was enforced) so a 1-core CI
//! run is not misread as a regression.

#![forbid(unsafe_code)]

use sc_core::{AlgorithmKind, DitaBuilder, DitaConfig, DitaPipeline, OnlineConfig, Parallelism};
use sc_datagen::{DatasetProfile, InstanceOptions, SyntheticDataset};
use sc_influence::RpoParams;
use sc_sim::{scripted_arrival, OnlineEngine, RoundReport};
use sc_types::TimeInstant;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Run {
    threads: usize,
    round_ms: f64,
    reports: Vec<RoundReport>,
}

/// The scripted workload every thread count replays identically.
#[derive(Clone, Copy)]
struct Script {
    cohort: usize,
    tasks_per_round: usize,
    rounds: usize,
    phi: f64,
    seed: u64,
}

/// Drives the scripted stream once on a re-budgeted clone of the
/// trained pipeline, returning total in-round wall time and the
/// per-round reports.
fn drive(
    base: &DitaPipeline,
    data: &SyntheticDataset,
    threads: usize,
    script: Script,
) -> (f64, Vec<RoundReport>) {
    let Script {
        cohort,
        tasks_per_round,
        rounds,
        phi,
        seed,
    } = script;
    let mut pipeline = base.clone();
    pipeline.set_threads(Parallelism::Fixed(threads));
    let mut engine = OnlineEngine::with_config(pipeline, &data.social, OnlineConfig::default());
    // A city-scale 5 km radius keeps the eligible-pair count (and with
    // it the *sequential* MCMF solve) small relative to the sharded
    // scoring passes, so the measurement isolates what this bench is
    // about: scoring scalability. Measured split at these defaults:
    // ~74 ms/round parallelizable (cache warm + eligibility + pair
    // scan) vs ~11 ms sequential solve — an Amdahl ceiling of ~2.9×
    // at 4 threads.
    let opts = InstanceOptions {
        valid_hours: phi,
        radius_km: 5.0,
        ..Default::default()
    };
    for w in data.instance_for_day(0, 0, cohort, opts).instance.workers {
        engine.worker_arrives(w);
    }
    let mut next_id = 0u32;
    let mut reports = Vec::with_capacity(rounds);
    let mut wall = 0.0f64;
    for round in 0..rounds {
        let now = TimeInstant::at(0, 8 + round as i64);
        for _ in 0..tasks_per_round {
            let (task, venue) = scripted_arrival(data, seed, next_id, now, phi);
            engine.task_arrives(task, venue);
            next_id += 1;
        }
        let t0 = Instant::now();
        reports.push(engine.run_round(now, AlgorithmKind::Ia));
        wall += t0.elapsed().as_secs_f64() * 1e3;
    }
    (wall, reports)
}

fn main() {
    let population = env_usize("DITA_BENCH_WORKERS", 2_000);
    let cohort = env_usize("DITA_BENCH_COHORT", 1_500);
    let tasks_per_round = env_usize("DITA_BENCH_TASKS", 250);
    let rounds = env_usize("DITA_BENCH_ROUNDS", 6);
    let n_sets = env_usize("DITA_BENCH_SETS", 40_000);
    let reps = env_usize("DITA_BENCH_REPS", 2);
    let phi = 3.0;
    let seed = 0xD17A_0004u64;

    let mut profile = DatasetProfile::brightkite_small();
    profile.n_workers = population;
    profile.n_venues = (population / 2).max(100);
    profile.checkins_per_worker = 12;

    eprintln!("[bench_round] generating dataset ({population} workers)…");
    let data = SyntheticDataset::generate(&profile, 17);
    eprintln!("[bench_round] training pipeline once (pool {n_sets} sets)…");
    let t0 = Instant::now();
    let base = DitaBuilder::new()
        .config(DitaConfig {
            n_topics: 12,
            lda_sweeps: 15,
            infer_sweeps: 10,
            rpo: RpoParams {
                max_sets: n_sets,
                ..Default::default()
            },
            seed,
            ..Default::default()
        })
        .build(&data.social, &data.histories)
        .expect("training");
    eprintln!(
        "[bench_round] trained in {:.1} ms ({} live sets)",
        t0.elapsed().as_secs_f64() * 1e3,
        base.model().pool().n_sets()
    );

    let script = Script {
        cohort,
        tasks_per_round,
        rounds,
        phi,
        seed,
    };
    // Warm pass outside the timed region (allocator, page cache).
    let _ = drive(
        &base,
        &data,
        1,
        Script {
            rounds: 2,
            ..script
        },
    );

    let mut runs: Vec<Run> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let mut best = f64::INFINITY;
        let mut reports = Vec::new();
        for _ in 0..reps.max(1) {
            let (wall, r) = drive(&base, &data, threads, script);
            best = best.min(wall);
            reports = r;
        }
        eprintln!(
            "[bench_round] {threads} thread(s): {best:.1} ms total, {:.2} ms/round",
            best / rounds as f64
        );
        runs.push(Run {
            threads,
            round_ms: best / rounds as f64,
            reports,
        });
    }

    let assigned: usize = runs[0].reports.iter().map(|r| r.assigned).sum();
    assert!(assigned > 0, "degenerate workload: nothing was assigned");
    for run in &runs[1..] {
        assert_eq!(
            run.reports, runs[0].reports,
            "round reports diverged at {} threads — determinism contract broken",
            run.threads
        );
    }

    let single_ms = runs[0].round_ms;
    let speedup_at = |threads: usize| {
        runs.iter()
            .find(|r| r.threads == threads)
            .map(|r| single_ms / r.round_ms)
            .unwrap_or(0.0)
    };
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The ≥2× floor needs hardware to speed up *on*; on fewer than 4
    // cores the JSON records the honest numbers and skips the assert
    // (same convention as bench_pool).
    let enforce_floor = host_threads >= 4;
    if enforce_floor {
        assert!(
            speedup_at(4) >= 2.0,
            "4-thread per-round speedup {:.2}× below the 2× floor",
            speedup_at(4)
        );
    }

    let run_rows: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"round_ms\": {:.3}, \"rounds_per_sec\": {:.1}, \"speedup_vs_single\": {:.3}}}",
                r.threads,
                r.round_ms,
                1e3 / r.round_ms,
                single_ms / r.round_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"online_round_scoring\",\n  \"population\": {population},\n  \"worker_cohort\": {cohort},\n  \"tasks_per_round\": {tasks_per_round},\n  \"rounds\": {rounds},\n  \"pool_sets\": {},\n  \"reps\": {reps},\n  \"host_threads\": {host_threads},\n  \"assigned_total\": {assigned},\n  \"reports_identical_across_threads\": true,\n  \"speedup_floor_enforced\": {enforce_floor},\n  \"speedup_at_4_threads\": {:.3},\n  \"runs\": [\n{}\n  ]\n}}\n",
        base.model().pool().n_sets(),
        speedup_at(4),
        run_rows.join(",\n")
    );

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_round.json");
    std::fs::write(&path, &json).expect("write BENCH_round.json");
    println!("{json}");
    eprintln!("[bench_round] written to {}", path.display());
}
