//! Incremental round pipeline A/B across thread counts → `BENCH_round.json`.
//!
//! PR 2/3 parallelized training and sweeps; PR 4 parallelized the
//! scoring passes *inside* one online round. This binary measures the
//! next lever — **reuse across rounds**: the engine's delta-advanced
//! eligibility state and the pipeline's persistent content-keyed
//! scorer cache (`OnlineConfig::incremental`) versus the from-scratch
//! rebuild baseline (`--no-incremental`), per thread budget.
//!
//! One pipeline is trained once; per `(mode, threads)` cell a clone is
//! re-budgeted via [`sc_core::DitaPipeline::set_threads`] (no retrain)
//! and driven through an identical scripted arrival stream with a
//! frozen pool, timing only the rounds. [`sc_sim::RoundReport`] carries
//! the per-phase wall split (eligibility / cache warm / pair scan /
//! solve) and the cache + delta telemetry, so the JSON shows *where*
//! the reuse pays. The binary asserts:
//!
//! * every cell's reports equal the single-thread rebuild run
//!   report-for-report (the determinism contract across both axes);
//! * steady-state (round ≥ 1) incremental rounds are at least 2×
//!   faster than rebuild rounds at the same thread count — enforced at
//!   1 thread, where the speedup is purely algorithmic and so
//!   host-independent;
//! * on a host with ≥ 4 cores, 4 rebuild threads still deliver the
//!   ≥ 2× intra-round parallel speedup PR 4 established.
//!
//! A second grid A/Bs the **flow solver** itself on a contested
//! workload — cohort barely above the task demand, wide eligibility
//! radius — where nearly every augmentation reroutes earlier
//! assignments and the MCMF solve dominates the round. It asserts
//! byte-identical reports across engines, that the batched engine
//! never pays more search passes than single-path SSP, and that the
//! Dijkstra solve phase is ≥ 1.5× faster than SPFA at 1 thread (early
//! exit at the sink: only the wavefront cheaper than the augmenting
//! path is settled, while the label-correcting baseline relaxes the
//! whole graph to quiescence every pass).
//!
//! ```text
//! cargo run --release -p sc-bench --bin bench_round
//! DITA_BENCH_VENUES=150 DITA_BENCH_TASKS=400 cargo run --release -p sc-bench --bin bench_round
//! ```
//!
//! The venue count bounds the distinct task contents the stream can
//! post, i.e. the steady-state scorer-cache hit rate; fewer venues →
//! warmer cache. Parallel speedups are only meaningful on a multi-core
//! host; the JSON records `host_threads` (and which floors were
//! enforced) so a 1-core CI run is not misread as a regression.

#![forbid(unsafe_code)]

use sc_core::{
    AlgorithmKind, DitaBuilder, DitaConfig, DitaPipeline, OnlineConfig, Parallelism,
    ShortestPathEngine,
};
use sc_datagen::{DatasetProfile, InstanceOptions, SyntheticDataset};
use sc_influence::RpoParams;
use sc_sim::{scripted_event, EngineBuilder, EventKind, NetworkMode, PipelineMode, RoundReport};
use sc_types::TimeInstant;
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The scripted workload every `(mode, threads)` cell replays
/// identically.
#[derive(Clone, Copy)]
struct Script {
    cohort: usize,
    tasks_per_round: usize,
    rounds: usize,
    phi: f64,
    /// Worker radius: bounds eligible-pair density, i.e. how much of a
    /// round the MCMF solve is. The reuse grid keeps it small (5 km) to
    /// isolate the cache/delta phases; the solver A/B widens it so the
    /// solve phase is worth measuring.
    radius_km: f64,
    seed: u64,
}

struct Run {
    mode: &'static str,
    threads: usize,
    /// Mean wall per round over the whole run, best of `reps`.
    round_ms: f64,
    /// Mean wall per round over rounds ≥ 1 (steady state), best rep.
    steady_ms: f64,
    reports: Vec<RoundReport>,
}

/// Drives the scripted stream once on a re-budgeted clone of the
/// trained pipeline, returning per-round wall times and reports. The
/// full cohort is re-fed every round so assigned workers re-join —
/// a stable worker axis, as a live platform's morning re-login wave
/// would produce, which is the carried-row steady state the delta
/// path is built for.
fn drive(
    base: &DitaPipeline,
    data: &SyntheticDataset,
    threads: usize,
    incremental: bool,
    solver: ShortestPathEngine,
    script: Script,
) -> (Vec<f64>, Vec<RoundReport>) {
    let Script {
        cohort,
        tasks_per_round,
        rounds,
        phi,
        radius_km,
        seed,
    } = script;
    let mut pipeline = base.clone();
    pipeline.set_threads(Parallelism::Fixed(threads));
    pipeline.set_solver(solver);
    let config = OnlineConfig {
        incremental,
        ..OnlineConfig::default()
    };
    let mut engine = EngineBuilder::new()
        .pipeline(PipelineMode::Owned(Box::new(pipeline)))
        .network(NetworkMode::Fixed(&data.social))
        .config(config)
        .build();
    let opts = InstanceOptions {
        valid_hours: phi,
        radius_km,
        ..Default::default()
    };
    let cohort_workers = data.instance_for_day(0, 0, cohort, opts).instance.workers;
    let mut next_id = 0u32;
    let mut reports = Vec::with_capacity(rounds);
    let mut walls = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let now = TimeInstant::at(0, 8 + round as i64);
        for w in &cohort_workers {
            engine.ingest(EventKind::WorkerArrival { worker: w.clone() });
        }
        for _ in 0..tasks_per_round {
            engine.ingest(scripted_event(data, seed, next_id, now, phi));
            next_id += 1;
        }
        let t0 = Instant::now();
        reports.push(engine.run_round(now, AlgorithmKind::Ia));
        walls.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    (walls, reports)
}

/// Mean of `f` over the steady-state rounds (round ≥ 1).
fn steady_mean(reports: &[RoundReport], f: impl Fn(&RoundReport) -> f64) -> f64 {
    let tail = &reports[1..];
    tail.iter().map(&f).sum::<f64>() / tail.len() as f64
}

fn main() {
    let population = env_usize("DITA_BENCH_WORKERS", 2_000);
    let cohort = env_usize("DITA_BENCH_COHORT", 1_500);
    let tasks_per_round = env_usize("DITA_BENCH_TASKS", 250);
    let rounds = env_usize("DITA_BENCH_ROUNDS", 8);
    let n_venues = env_usize("DITA_BENCH_VENUES", 300);
    let n_sets = env_usize("DITA_BENCH_SETS", 40_000);
    let reps = env_usize("DITA_BENCH_REPS", 2);
    let phi = 3.0;
    let seed = 0xD17A_0004u64;

    let mut profile = DatasetProfile::brightkite_small();
    profile.n_workers = population;
    profile.n_venues = n_venues.max(50);
    profile.checkins_per_worker = 12;

    eprintln!(
        "[bench_round] generating dataset ({population} workers, {} venues)…",
        profile.n_venues
    );
    let data = SyntheticDataset::generate(&profile, 17);
    eprintln!("[bench_round] training pipeline once (pool {n_sets} sets)…");
    let t0 = Instant::now();
    let base = DitaBuilder::new()
        .config(DitaConfig {
            n_topics: 12,
            lda_sweeps: 15,
            infer_sweeps: 10,
            rpo: RpoParams {
                max_sets: n_sets,
                ..Default::default()
            },
            seed,
            ..Default::default()
        })
        .build(&data.social, &data.histories)
        .expect("training");
    eprintln!(
        "[bench_round] trained in {:.1} ms ({} live sets)",
        t0.elapsed().as_secs_f64() * 1e3,
        base.model().pool().n_sets()
    );

    // A city-scale 5 km radius keeps the eligible-pair count (and with
    // it the *sequential* MCMF solve) small relative to the scoring
    // passes, so the reuse grid isolates what it is about: what the
    // cache + delta reuse saves per round.
    let script = Script {
        cohort,
        tasks_per_round,
        rounds,
        phi,
        radius_km: 5.0,
        seed,
    };
    // Warm pass outside the timed region (allocator, page cache).
    let _ = drive(
        &base,
        &data,
        1,
        true,
        ShortestPathEngine::default(),
        Script {
            rounds: 2,
            ..script
        },
    );

    let mut runs: Vec<Run> = Vec::new();
    for &(mode, incremental) in &[("rebuild", false), ("incremental", true)] {
        for threads in [1usize, 2, 4, 8] {
            let mut best_total = f64::INFINITY;
            let mut best = (Vec::new(), Vec::new());
            for _ in 0..reps.max(1) {
                let (walls, reports) = drive(
                    &base,
                    &data,
                    threads,
                    incremental,
                    ShortestPathEngine::default(),
                    script,
                );
                let total: f64 = walls.iter().sum();
                if total < best_total {
                    best_total = total;
                    best = (walls, reports);
                }
            }
            let (walls, reports) = best;
            let steady_ms = walls[1..].iter().sum::<f64>() / walls[1..].len() as f64;
            eprintln!(
                "[bench_round] {mode:>11} × {threads} thread(s): \
                 {:.2} ms/round ({steady_ms:.2} ms steady)",
                best_total / rounds as f64
            );
            runs.push(Run {
                mode,
                threads,
                round_ms: best_total / rounds as f64,
                steady_ms,
                reports,
            });
        }
    }

    let assigned: usize = runs[0].reports.iter().map(|r| r.assigned).sum();
    assert!(assigned > 0, "degenerate workload: nothing was assigned");
    for run in &runs[1..] {
        assert_eq!(
            run.reports, runs[0].reports,
            "round reports diverged at mode={} threads={} — determinism \
             contract broken",
            run.mode, run.threads
        );
    }
    let inc1 = runs
        .iter()
        .find(|r| r.mode == "incremental" && r.threads == 1)
        .unwrap();
    assert!(
        inc1.reports.iter().skip(1).all(|r| !r.elig_full_rebuild),
        "incremental run fell back to full rebuilds past round 0"
    );

    // The incremental floor is algorithmic (cache + delta reuse), so
    // it holds on any host — enforced at 1 thread where no parallel
    // headroom can mask a regression.
    let rebuild1 = runs
        .iter()
        .find(|r| r.mode == "rebuild" && r.threads == 1)
        .unwrap();
    let incremental_speedup = rebuild1.steady_ms / inc1.steady_ms;
    assert!(
        incremental_speedup >= 2.0,
        "steady-state incremental speedup {incremental_speedup:.2}× \
         below the 2× floor ({:.2} ms rebuild vs {:.2} ms incremental)",
        rebuild1.steady_ms,
        inc1.steady_ms
    );

    // PR 4's intra-round parallel floor, kept on the rebuild runs (the
    // incremental path has less parallelizable work left by design).
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let parallel_speedup = rebuild1.round_ms
        / runs
            .iter()
            .find(|r| r.mode == "rebuild" && r.threads == 4)
            .map(|r| r.round_ms)
            .unwrap();
    let enforce_parallel_floor = host_threads >= 4;
    if enforce_parallel_floor {
        assert!(
            parallel_speedup >= 2.0,
            "4-thread rebuild per-round speedup {parallel_speedup:.2}× \
             below the 2× floor"
        );
    }

    // --- Solver A/B: the MCMF engine itself. ---------------------------
    // A contested workload: the cohort barely exceeds the tasks per
    // round and a wide radius makes most pairs eligible, so nearly
    // every augmentation reroutes earlier assignments through long
    // residual chains — the regime where the solve phase dominates a
    // round and the engine choice matters. (The reuse grid above is the
    // opposite: an abundant cohort and a tight radius keep the solve
    // small to isolate the cache/delta phases.) The same stream is
    // replayed per engine. Bellman–Ford is excluded: it is the
    // O(V·E)-per-pass ablation reference (benches/ablations.rs covers
    // it at toy sizes) and would dominate the bench wall clock without
    // informing the production choice. Reports must agree
    // engine-for-engine — the solver may only change wall time and
    // pass counts, never an assignment.
    let solver_script = Script {
        cohort: 900,
        tasks_per_round: 800,
        rounds: 5,
        radius_km: 30.0,
        ..script
    };
    struct SolverRun {
        solver: ShortestPathEngine,
        threads: usize,
        round_ms: f64,
        solve_ms: f64,
        passes: f64,
        augmentations: f64,
        reports: Vec<RoundReport>,
    }
    let mut solver_runs: Vec<SolverRun> = Vec::new();
    for &(solver, threads) in &[
        (ShortestPathEngine::Dijkstra, 1usize),
        (ShortestPathEngine::Dijkstra, 4),
        (ShortestPathEngine::Spfa, 1),
    ] {
        let mut best_total = f64::INFINITY;
        let mut best = (Vec::new(), Vec::new());
        for _ in 0..reps.max(1) {
            let (walls, reports) = drive(&base, &data, threads, true, solver, solver_script);
            let total: f64 = walls.iter().sum();
            if total < best_total {
                best_total = total;
                best = (walls, reports);
            }
        }
        let (_, reports) = best;
        let solve_ms = steady_mean(&reports, |x| x.solve_ms);
        eprintln!(
            "[bench_round] solver {:>8} × {threads} thread(s): \
             {:.2} ms/round, {solve_ms:.2} ms solve",
            solver.label(),
            best_total / solver_script.rounds as f64
        );
        solver_runs.push(SolverRun {
            solver,
            threads,
            round_ms: best_total / solver_script.rounds as f64,
            solve_ms,
            passes: steady_mean(&reports, |x| x.solve_passes as f64),
            augmentations: steady_mean(&reports, |x| x.solve_augmentations as f64),
            reports,
        });
    }
    let solver_assigned: usize = solver_runs[0].reports.iter().map(|r| r.assigned).sum();
    assert!(
        solver_assigned > 0,
        "degenerate solver workload: nothing was assigned"
    );
    for run in &solver_runs[1..] {
        assert_eq!(
            run.reports,
            solver_runs[0].reports,
            "round reports diverged at solver={} threads={} — the engine \
             leaked into results",
            run.solver.label(),
            run.threads
        );
    }
    // The batched engine never pays more search passes than single-path
    // SSP (one per augmentation plus the final no-path pass). On this
    // workload the tie-break jitter makes every path cost unique, so
    // exactly one path is tight per pass and the bound is met with
    // equality — batching only engages on tie plateaus, which the
    // jitter excludes by design (the mcmf unit suite pins the strict
    // `passes < augmentations` case on a jitter-free plateau). The
    // honest win here is the ≥ 1.5× solve-phase floor vs SPFA at
    // 1 thread, where the gap is purely algorithmic.
    let dijkstra1 = &solver_runs[0];
    let spfa1 = solver_runs
        .iter()
        .find(|r| r.solver == ShortestPathEngine::Spfa)
        .unwrap();
    assert!(
        dijkstra1.passes <= dijkstra1.augmentations + 1.0,
        "batched engine paid more passes than single-path SSP: \
         {:.0} passes for {:.0} augmentations",
        dijkstra1.passes,
        dijkstra1.augmentations
    );
    let solver_speedup = spfa1.solve_ms / dijkstra1.solve_ms;
    assert!(
        solver_speedup >= 1.5,
        "dijkstra solve phase only {solver_speedup:.2}× faster than spfa \
         at 1 thread ({:.2} ms vs {:.2} ms) — below the 1.5× floor",
        dijkstra1.solve_ms,
        spfa1.solve_ms
    );

    let run_rows: Vec<String> = runs
        .iter()
        .map(|r| {
            let hits = steady_mean(&r.reports, |x| x.cache_hits as f64);
            let misses = steady_mean(&r.reports, |x| x.cache_misses as f64);
            let hit_rate = if hits + misses > 0.0 {
                hits / (hits + misses)
            } else {
                0.0
            };
            format!(
                "    {{\"mode\": \"{}\", \"threads\": {}, \"round_ms\": {:.3}, \
                 \"steady_round_ms\": {:.3}, \"cache_hit_rate\": {:.3}, \
                 \"pairs_carried_per_round\": {:.0}, \"phases_ms\": \
                 {{\"eligibility\": {:.3}, \"warm\": {:.3}, \"score\": {:.3}, \
                 \"solve\": {:.3}}}}}",
                r.mode,
                r.threads,
                r.round_ms,
                r.steady_ms,
                hit_rate,
                steady_mean(&r.reports, |x| x.elig_pairs_carried as f64),
                steady_mean(&r.reports, |x| x.eligibility_ms),
                steady_mean(&r.reports, |x| x.warm_ms),
                steady_mean(&r.reports, |x| x.score_ms),
                steady_mean(&r.reports, |x| x.solve_ms),
            )
        })
        .collect();
    let solver_rows: Vec<String> = solver_runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"solver\": \"{}\", \"threads\": {}, \"round_ms\": {:.3}, \
                 \"solve_ms\": {:.3}, \"passes_per_round\": {:.1}, \
                 \"augmentations_per_round\": {:.1}}}",
                r.solver.label(),
                r.threads,
                r.round_ms,
                r.solve_ms,
                r.passes,
                r.augmentations,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"incremental_round_pipeline\",\n  \"population\": {population},\n  \"worker_cohort\": {cohort},\n  \"tasks_per_round\": {tasks_per_round},\n  \"rounds\": {rounds},\n  \"venues\": {},\n  \"pool_sets\": {},\n  \"reps\": {reps},\n  \"host_threads\": {host_threads},\n  \"assigned_total\": {assigned},\n  \"reports_identical_across_threads\": true,\n  \"reports_identical_across_modes\": true,\n  \"steady_state_incremental_speedup_at_1_thread\": {incremental_speedup:.3},\n  \"incremental_speedup_floor_enforced\": true,\n  \"rebuild_speedup_at_4_threads\": {parallel_speedup:.3},\n  \"parallel_speedup_floor_enforced\": {enforce_parallel_floor},\n  \"runs\": [\n{}\n  ],\n  \"solver_ab\": {{\n  \"worker_cohort\": {},\n  \"tasks_per_round\": {},\n  \"rounds\": {},\n  \"radius_km\": {:.1},\n  \"reports_identical_across_solvers\": true,\n  \"spfa_vs_dijkstra_solve_speedup_at_1_thread\": {solver_speedup:.3},\n  \"solver_speedup_floor_enforced\": true,\n  \"runs\": [\n{}\n  ]\n  }}\n}}\n",
        profile.n_venues,
        base.model().pool().n_sets(),
        run_rows.join(",\n"),
        solver_script.cohort,
        solver_script.tasks_per_round,
        solver_script.rounds,
        solver_script.radius_km,
        solver_rows.join(",\n")
    );

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_round.json");
    std::fs::write(&path, &json).expect("write BENCH_round.json");
    println!("{json}");
    eprintln!("[bench_round] written to {}", path.display());
}
