//! Figure 15: effect of r on BK.

#![forbid(unsafe_code)]
fn main() {
    sc_bench::comparison_figure(
        "fig15",
        "BK",
        sc_bench::AxisSel::Radius,
        "Effect of r on BK (five metrics, five algorithms)",
    );
}
