//! Figure 8: effect of the reachable radius r on the AI of the IA variants.

#![forbid(unsafe_code)]
fn main() {
    sc_bench::ablation_figure(
        "fig08",
        "BK",
        sc_bench::AxisSel::Radius,
        "Effect of r on Average Influence (ablation, BK)",
    );
    sc_bench::ablation_figure(
        "fig08",
        "FS",
        sc_bench::AxisSel::Radius,
        "Effect of r on Average Influence (ablation, FS)",
    );
}
