//! Online-engine throughput and maintenance cost → `BENCH_online.json`.
//!
//! Drives a multi-day streaming run on [`sc_sim::OnlineEngine`] and
//! measures, per round: assignment throughput (rounds/sec) and pool
//! maintenance wall time. Two baselines anchor the numbers:
//!
//! * **full retrain** — one from-scratch RPO pool build, the cost an
//!   online platform would pay per round without incremental
//!   maintenance; the report records how many times cheaper the
//!   bounded rotation is, and
//! * **retrain-every-round oracle** — the same arrival stream assigned
//!   by a pipeline whose pool *is* rebuilt from scratch each round;
//!   the engine's end-of-run Average Influence must stay within a few
//!   percent of it (the rotation only swaps RRR samples for fresh iid
//!   samples of the same distribution).
//!
//! ```text
//! cargo run --release -p sc-bench --bin bench_online
//! DITA_BENCH_DAYS=4 DITA_BENCH_TASKS=30 cargo run --release -p sc-bench --bin bench_online
//! ```

#![forbid(unsafe_code)]

use sc_core::{AlgorithmKind, DitaBuilder, OnlineConfig};
use sc_datagen::{DatasetProfile, InstanceOptions, SyntheticDataset};
use sc_influence::Rpo;
use sc_sim::{scripted_event, EngineBuilder, EventKind, NetworkMode, PipelineMode};
use sc_types::{TimeInstant, Worker};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One round of the precomputed arrival script.
struct RoundScript {
    now: TimeInstant,
    workers: Vec<Worker>,
    tasks: Vec<EventKind>,
}

/// Builds the deterministic multi-day arrival script shared by the
/// live engine and the oracle.
fn build_script(
    data: &SyntheticDataset,
    days: usize,
    cohort: usize,
    tasks_per_round: usize,
    phi: f64,
    seed: u64,
) -> Vec<RoundScript> {
    let opts = InstanceOptions {
        valid_hours: phi,
        ..Default::default()
    };
    let mut script = Vec::new();
    let mut next_id = 0u32;
    for day in 0..days {
        for hour in 8..20i64 {
            let now = TimeInstant::at(day as i64, hour);
            let workers = if hour == 8 {
                data.instance_for_day(day, 0, cohort, opts).instance.workers
            } else {
                Vec::new()
            };
            let mut tasks = Vec::new();
            for _ in 0..tasks_per_round {
                tasks.push(scripted_event(data, seed, next_id, now, phi));
                next_id += 1;
            }
            script.push(RoundScript {
                now,
                workers,
                tasks,
            });
        }
    }
    script
}

fn main() {
    let days = env_usize("DITA_BENCH_DAYS", 2);
    let cohort = env_usize("DITA_BENCH_COHORT", 120);
    let tasks_per_round = env_usize("DITA_BENCH_TASKS", 20);
    let growth_cap = env_usize("DITA_BENCH_GROWTH_CAP", 1_024);
    let horizon = env_usize("DITA_BENCH_HORIZON", 6) as u32;
    let phi = 3.0;
    let seed = 0xD17A_0002u64;
    let algorithm = AlgorithmKind::Ia;

    let profile = DatasetProfile::brightkite_small();
    eprintln!(
        "[bench_online] training on '{}' ({} workers)…",
        profile.name, profile.n_workers
    );
    let data = SyntheticDataset::generate(&profile, seed);
    let online = OnlineConfig {
        round_hours: 1,
        growth_cap,
        eviction_horizon: horizon,
        target_sets: 0,
        incremental: true,
    };
    let config = sc_bench::config_for(sc_sim::ExperimentScale::Small);
    let build = |cfg| {
        DitaBuilder::new()
            .config(cfg)
            .online(online)
            .build(&data.social, &data.histories)
            .expect("training")
    };
    let pipeline = build(config);
    let rpo_params = pipeline.model().config().rpo;
    let master_seed = pipeline.model().pool().master_seed();
    let trained_sets = pipeline.model().pool().n_sets();

    let script = build_script(&data, days, cohort, tasks_per_round, phi, seed);
    let rounds = script.len();

    // --- Live engine: bounded rotation, zero retrains. -----------------
    eprintln!(
        "[bench_online] live engine: {rounds} rounds, quantum {growth_cap}, horizon {horizon}…"
    );
    let mut engine = EngineBuilder::new()
        .pipeline(PipelineMode::Owned(Box::new(pipeline.clone())))
        .network(NetworkMode::Fixed(&data.social))
        .build();
    let mut maint_ms = Vec::with_capacity(rounds);
    let t0 = Instant::now();
    for r in &script {
        for w in &r.workers {
            engine.ingest(EventKind::WorkerArrival { worker: w.clone() });
        }
        for t in &r.tasks {
            engine.ingest(t.clone());
        }
        let report = engine.run_round(r.now, algorithm);
        maint_ms.push(report.maintenance_ms);
    }
    let live_wall_s = t0.elapsed().as_secs_f64();
    let live = engine.summary();
    assert_eq!(
        live.published,
        live.assigned + live.expired + live.still_open,
        "task conservation broken"
    );
    let avg_maint_ms: f64 = maint_ms.iter().sum::<f64>() / rounds as f64;
    let max_maint_ms = maint_ms.iter().cloned().fold(0.0f64, f64::max);

    // --- Full-retrain baseline: one from-scratch RPO build. ------------
    let mut full_retrain_ms = f64::INFINITY;
    for _ in 0..2 {
        let t = Instant::now();
        let (pool, _) = Rpo::new(rpo_params).build_pool_seeded(&data.social, master_seed);
        full_retrain_ms = full_retrain_ms.min(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(pool.n_sets(), trained_sets);
    }
    let retrain_speedup = full_retrain_ms / avg_maint_ms.max(1e-9);

    // --- Retrain-every-round oracle on the same script. ----------------
    eprintln!("[bench_online] oracle: retraining the pool every round…");
    let mut oracle = EngineBuilder::new()
        .pipeline(PipelineMode::Owned(Box::new(pipeline)))
        .network(NetworkMode::Fixed(&data.social))
        .config(OnlineConfig::default())
        .build();
    let t1 = Instant::now();
    for (i, r) in script.iter().enumerate() {
        let round_seed = rand::mix_stream(master_seed, i as u64 + 1);
        let (pool, _) = Rpo::new(rpo_params).build_pool_seeded(&data.social, round_seed);
        *oracle.pipeline_mut().model_mut().pool_mut() = pool;
        for w in &r.workers {
            oracle.ingest(EventKind::WorkerArrival { worker: w.clone() });
        }
        for t in &r.tasks {
            oracle.ingest(t.clone());
        }
        oracle.run_round(r.now, algorithm);
    }
    let oracle_wall_s = t1.elapsed().as_secs_f64();
    let oracle_summary = oracle.summary();

    let ai_live = live.average_influence;
    let ai_oracle = oracle_summary.average_influence;
    let ai_rel_diff = if ai_oracle == 0.0 {
        0.0
    } else {
        (ai_live - ai_oracle).abs() / ai_oracle
    };

    eprintln!(
        "[bench_online] live: {:.1} rounds/s, maintenance avg {:.2} ms (max {:.2} ms); \
         full retrain {:.1} ms → {:.1}× cheaper per round",
        rounds as f64 / live_wall_s,
        avg_maint_ms,
        max_maint_ms,
        full_retrain_ms,
        retrain_speedup
    );
    eprintln!(
        "[bench_online] AI live {ai_live:.4} vs oracle {ai_oracle:.4} ({:.2}% apart); \
         oracle wall {oracle_wall_s:.2}s vs live {live_wall_s:.2}s",
        ai_rel_diff * 100.0
    );

    let pool = engine.pipeline().model().pool();
    let json = format!(
        "{{\n  \"bench\": \"online_engine\",\n  \"profile\": \"{}\",\n  \"days\": {days},\n  \"rounds\": {rounds},\n  \"tasks_per_round\": {tasks_per_round},\n  \"worker_cohort\": {cohort},\n  \"growth_cap\": {growth_cap},\n  \"eviction_horizon\": {horizon},\n  \"trained_sets\": {trained_sets},\n  \"live_sets\": {},\n  \"stream_window\": [{}, {}],\n  \"rounds_per_sec\": {:.2},\n  \"maintenance_avg_ms\": {:.3},\n  \"maintenance_max_ms\": {:.3},\n  \"sets_added\": {},\n  \"sets_evicted\": {},\n  \"full_retrain_ms\": {:.3},\n  \"retrain_speedup\": {:.2},\n  \"maintenance_at_least_5x_cheaper\": {},\n  \"ai_live\": {:.6},\n  \"ai_oracle\": {:.6},\n  \"ai_rel_diff\": {:.6},\n  \"ai_within_5pct_of_oracle\": {},\n  \"assignment_rate_live\": {:.4},\n  \"assignment_rate_oracle\": {:.4},\n  \"full_retrains_live\": 0\n}}\n",
        profile.name,
        pool.n_sets(),
        pool.stream_base(),
        pool.stream_base() + pool.n_sets(),
        rounds as f64 / live_wall_s,
        avg_maint_ms,
        max_maint_ms,
        live.sets_added,
        live.sets_evicted,
        full_retrain_ms,
        retrain_speedup,
        retrain_speedup >= 5.0,
        ai_live,
        ai_oracle,
        ai_rel_diff,
        ai_rel_diff <= 0.05,
        live.assignment_rate(),
        oracle_summary.assignment_rate(),
    );

    assert!(
        retrain_speedup >= 5.0,
        "bounded maintenance must be at least 5× cheaper than a full retrain \
         (got {retrain_speedup:.2}×)"
    );
    assert!(
        ai_rel_diff <= 0.05,
        "end-of-run AI must stay within 5% of the retrain-every-round oracle \
         (got {:.2}%)",
        ai_rel_diff * 100.0
    );

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_online.json");
    std::fs::write(&path, &json).expect("write BENCH_online.json");
    println!("{json}");
    eprintln!("[bench_online] written to {}", path.display());
}
