//! Pool-generation throughput across thread counts → `BENCH_pool.json`.
//!
//! Times [`RrrPool::generate_sharded`] at 1/2/4/8 threads on a synthetic
//! social network, verifies the pools are bit-identical (the engine's
//! core guarantee), and writes the measurements to `BENCH_pool.json` at
//! the repository root so successive PRs can track the sampling engine's
//! perf trajectory.
//!
//! ```text
//! cargo run --release -p sc-bench --bin bench_pool
//! DITA_BENCH_WORKERS=50000 DITA_BENCH_SETS=500000 cargo run --release -p sc-bench --bin bench_pool
//! ```
//!
//! Speedups are only meaningful on a multi-core host; the JSON records
//! `host_threads` so a 1-core CI run is not misread as a regression.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sc_datagen::generate_social_edges;
use sc_influence::{PropagationModel, RrrPool, SocialNetwork};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

struct Run {
    threads: usize,
    wall_ms: f64,
    fingerprint: u64,
}

fn main() {
    let n_workers = env_usize("DITA_BENCH_WORKERS", 20_000);
    let n_sets = env_usize("DITA_BENCH_SETS", 200_000);
    let reps = env_usize("DITA_BENCH_REPS", 3);
    let master_seed = 0xD17A_0001u64;

    eprintln!("[bench_pool] building network: {n_workers} workers, avg degree 4…");
    let mut rng = SmallRng::seed_from_u64(7);
    let edges = generate_social_edges(n_workers, 4, &mut rng);
    let net = SocialNetwork::from_undirected_edges(n_workers, &edges);

    // Warm the allocator and page cache outside the timed region.
    let _ = RrrPool::generate_sharded(
        &net,
        n_sets / 10,
        PropagationModel::WeightedCascade,
        master_seed,
        1,
    );

    let mut runs: Vec<Run> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let mut best = f64::INFINITY;
        let mut fingerprint = 0u64;
        for _ in 0..reps.max(1) {
            let t0 = Instant::now();
            let pool = RrrPool::generate_sharded(
                &net,
                n_sets,
                PropagationModel::WeightedCascade,
                master_seed,
                threads,
            );
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            best = best.min(ms);
            fingerprint = pool.fingerprint();
        }
        eprintln!(
            "[bench_pool] {threads} thread(s): {best:.1} ms ({:.0} sets/s)",
            n_sets as f64 / (best / 1e3)
        );
        runs.push(Run {
            threads,
            wall_ms: best,
            fingerprint,
        });
    }

    let identical = runs.iter().all(|r| r.fingerprint == runs[0].fingerprint);
    assert!(
        identical,
        "pools diverged across thread counts — determinism guarantee broken"
    );

    let single_ms = runs[0].wall_ms;
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let run_rows: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"wall_ms\": {:.3}, \"sets_per_sec\": {:.0}, \"speedup_vs_single\": {:.3}}}",
                r.threads,
                r.wall_ms,
                n_sets as f64 / (r.wall_ms / 1e3),
                single_ms / r.wall_ms
            )
        })
        .collect();
    let json = format!
("{{\n  \"bench\": \"rrr_pool_generation\",\n  \"n_workers\": {n_workers},\n  \"n_edges\": {},\n  \"n_sets\": {n_sets},\n  \"reps\": {reps},\n  \"host_threads\": {host_threads},\n  \"master_seed\": {master_seed},\n  \"fingerprint\": \"{:#018x}\",\n  \"identical_across_threads\": {identical},\n  \"runs\": [\n{}\n  ]\n}}\n",
        net.n_edges(),
        runs[0].fingerprint,
        run_rows.join(",\n")
    );

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_pool.json");
    std::fs::write(&path, &json).expect("write BENCH_pool.json");
    println!("{json}");
    eprintln!("[bench_pool] written to {}", path.display());
}
