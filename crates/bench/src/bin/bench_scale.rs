//! Cold-start at scale under a memory budget → `BENCH_scale.json`.
//!
//! Drives the full million-worker-capable cold-start path on the
//! [`ScaleProfile`] generator — streaming CSR network build, chunked
//! [`RrrPool`] generation at several thread counts, growth/eviction
//! rotation, and corpus-free [`StreamingLda`] training — and records
//! peak memory (both the deterministic arena-capacity accounting and
//! the OS's `VmHWM` view) plus cold-start wall time per phase.
//!
//! ```text
//! cargo run --release -p sc-bench --bin bench_scale            # 10⁵ workers
//! cargo run --release -p sc-bench --bin bench_scale -- --smoke # 10⁴ workers (CI)
//! DITA_SCALE_WORKERS=1000000 cargo run --release -p sc-bench --bin bench_scale
//! ```
//!
//! The run *asserts* its budget, it does not merely report it:
//!
//! * chunked pools must be bit-identical across thread counts and to
//!   the contiguous reference pool (fingerprint equality);
//! * the chunked pool's peak accounting must stay **additive** — live
//!   bytes plus a bounded number of arena segments — while the
//!   contiguous reference must exhibit the multiplicative replacement
//!   copy (peak above capacity) the refactor removed; chunked peak must
//!   undercut contiguous peak outright at this scale;
//! * on Linux, whole-run peak RSS must stay under a ceiling
//!   (`DITA_SCALE_RSS_CEILING_MB` to override; elsewhere the probe
//!   honestly records `null` and the ceiling is skipped).

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sc_datagen::ScaleProfile;
use sc_influence::{arena::SEG_BYTES, ContiguousPool, PoolMemStats, PropagationModel, RrrPool};
use sc_stats::{peak_rss_bytes, reset_peak_rss};
use sc_topics::{LdaParams, StreamingLda};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One measured phase: wall time plus the kernel's per-phase RSS peak
/// (watermark reset before the phase; `None` off-Linux).
struct Phase {
    name: &'static str,
    wall_ms: f64,
    rss_peak: Option<u64>,
}

fn timed<T>(name: &'static str, phases: &mut Vec<Phase>, f: impl FnOnce() -> T) -> T {
    reset_peak_rss();
    let t0 = Instant::now();
    let out = f();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let rss_peak = peak_rss_bytes();
    let rss = rss_peak
        .map(|b| format!("{:.0} MB peak RSS", b as f64 / (1 << 20) as f64))
        .unwrap_or_else(|| "RSS unavailable".into());
    eprintln!("[bench_scale] {name}: {wall_ms:.0} ms, {rss}");
    phases.push(Phase {
        name,
        wall_ms,
        rss_peak,
    });
    out
}

/// Additive-transient allowance for the chunked pool: the membership
/// delta index (≤ live/8 — a quarter of the sets is rotated per round,
/// and membership is about half the live bytes), the per-worker scatter
/// scratch (count + cursor vectors, 12 B each), and a handful of arena
/// segments in flight. Everything here is O(delta) + O(workers) —
/// crucially NOT proportional to live bytes the way the contiguous
/// layout's replacement copy is.
fn additive_slack(live_bytes: usize, n_workers: usize) -> usize {
    live_bytes / 8 + 12 * n_workers + 8 * SEG_BYTES
}

fn json_opt(v: Option<u64>) -> String {
    v.map_or("null".into(), |b| b.to_string())
}

fn mem_json(m: &PoolMemStats) -> String {
    format!(
        "{{\"live_bytes\": {}, \"capacity_bytes\": {}, \"peak_bytes\": {}}}",
        m.live_bytes, m.capacity_bytes, m.peak_bytes
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let n_workers = env_usize("DITA_SCALE_WORKERS", if smoke { 10_000 } else { 100_000 });
    let sets_per_worker = env_usize("DITA_SCALE_SETS_PER_WORKER", 2);
    let n_sets = n_workers * sets_per_worker;
    let n_topics = env_usize("DITA_SCALE_TOPICS", 16);
    let sweeps = env_usize("DITA_SCALE_SWEEPS", 3);
    // Generous by design: the ceiling catches budget *regressions*
    // (forgotten copies, doubling growth), not normal variance.
    let ceiling_mb = env_usize("DITA_SCALE_RSS_CEILING_MB", 512 + 2 * n_workers / 1_000);
    let master_seed = 0xD17A_5CA1u64;
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(4);

    let profile = ScaleProfile::with_workers(n_workers);
    eprintln!(
        "[bench_scale] profile {}: {n_workers} workers, target {} directed edges, {n_sets} sets",
        profile.name,
        profile.target_directed_edges()
    );

    let mut phases: Vec<Phase> = Vec::new();
    let whole_run_t0 = Instant::now();

    // Phase 1 — streaming network build (generator → CsrBuilder → CSR).
    let net = timed("network_build", &mut phases, || {
        profile.social_network(master_seed)
    });
    assert!(
        net.n_edges() > profile.target_directed_edges() * 9 / 10,
        "generator fell far short of the target edge count: {}",
        net.n_edges()
    );

    // Phase 2 — chunked cold start at 1 and N threads, bit-identical.
    let pool1 = timed("cold_start_chunked_t1", &mut phases, || {
        RrrPool::generate_sharded(
            &net,
            n_sets,
            PropagationModel::WeightedCascade,
            master_seed,
            1,
        )
    });
    let mut pool = timed("cold_start_chunked_tn", &mut phases, || {
        RrrPool::generate_sharded(
            &net,
            n_sets,
            PropagationModel::WeightedCascade,
            master_seed,
            max_threads,
        )
    });
    let fingerprint = pool.fingerprint();
    assert_eq!(
        pool1.fingerprint(),
        fingerprint,
        "chunked pool diverged between 1 and {max_threads} threads"
    );
    assert_eq!(
        pool1.mem_stats(),
        pool.mem_stats(),
        "deterministic byte accounting diverged across thread counts"
    );
    let cold = pool.mem_stats();
    drop(pool1);
    assert!(
        cold.peak_bytes <= cold.live_bytes + additive_slack(cold.live_bytes, n_workers),
        "chunked cold start transients not additive: peak {} vs live {}",
        cold.peak_bytes,
        cold.live_bytes
    );

    // Phase 3 — growth + eviction rotation: the maintained pool must
    // keep its transients additive while sets rotate through it.
    let rotated = timed("rotation", &mut phases, || {
        for _ in 0..3 {
            let epoch = pool.advance_epoch();
            pool.evict_before_epoch(epoch, n_sets / 4);
            pool.extend_to(&net, n_sets, max_threads);
        }
        pool.mem_stats()
    });
    assert!(
        rotated.peak_bytes <= rotated.live_bytes + additive_slack(rotated.live_bytes, n_workers),
        "rotation transients not additive: peak {} vs live {}",
        rotated.peak_bytes,
        rotated.live_bytes
    );

    // Phase 4 — contiguous reference A/B: same sets, doubling-Vec
    // layout. Its replacement copies must show up as a multiplicative
    // peak, and the chunked peak must undercut it outright.
    let contiguous = timed("cold_start_contiguous", &mut phases, || {
        ContiguousPool::generate_sharded(
            &net,
            n_sets,
            PropagationModel::WeightedCascade,
            master_seed,
            max_threads,
        )
    });
    assert_eq!(
        contiguous.fingerprint(),
        fingerprint,
        "contiguous reference pool diverged from the chunked pool"
    );
    let contig = contiguous.mem_stats();
    drop(contiguous);
    assert!(
        contig.peak_bytes > contig.capacity_bytes,
        "contiguous pool shows no replacement copy — A/B reference is broken"
    );
    assert!(
        cold.peak_bytes < contig.peak_bytes,
        "chunked peak {} must undercut contiguous peak {} at {n_workers} workers",
        cold.peak_bytes,
        contig.peak_bytes
    );

    // Phase 5 — streaming LDA over per-worker documents, no corpus.
    let docs = profile.documents(master_seed);
    let n_tokens = timed("streaming_lda", &mut phases, || {
        let params = LdaParams::with_topics(n_topics).sweeps(sweeps);
        let mut rng = SmallRng::seed_from_u64(master_seed);
        let mut lda = StreamingLda::new(params, docs.n_words());
        let mut tokens = 0usize;
        for w in 0..n_workers as u32 {
            let doc = docs.document(w);
            tokens += doc.len();
            lda.feed_doc(doc, &mut rng);
        }
        let model = lda.finish(&mut rng);
        assert_eq!(model.n_docs(), n_workers);
        tokens
    });

    let total_wall_ms = whole_run_t0.elapsed().as_secs_f64() * 1e3;
    let rss_whole = peak_rss_bytes();
    let rss_ceiling_ok = match rss_whole {
        // clear_refs resets the watermark per phase, so the whole-run
        // peak is the max over phase peaks.
        Some(_) => {
            let peak = phases
                .iter()
                .filter_map(|p| p.rss_peak)
                .max()
                .unwrap_or_default();
            assert!(
                peak <= (ceiling_mb as u64) << 20,
                "peak RSS {:.0} MB exceeds the {ceiling_mb} MB ceiling",
                peak as f64 / (1 << 20) as f64
            );
            true
        }
        None => false,
    };

    let phase_rows: Vec<String> = phases
        .iter()
        .map(|p| {
            format!(
                "    {{\"phase\": \"{}\", \"wall_ms\": {:.3}, \"rss_peak_bytes\": {}}}",
                p.name,
                p.wall_ms,
                json_opt(p.rss_peak)
            )
        })
        .collect();
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"scale_cold_start\",\n  \"profile\": \"{}\",\n  \"n_workers\": {n_workers},\n  \"n_edges\": {},\n  \"n_sets\": {n_sets},\n  \"n_topics\": {n_topics},\n  \"lda_sweeps\": {sweeps},\n  \"lda_tokens\": {n_tokens},\n  \"host_threads\": {host_threads},\n  \"bench_threads\": {max_threads},\n  \"master_seed\": {master_seed},\n  \"fingerprint\": \"{fingerprint:#018x}\",\n  \"identical_across_threads\": true,\n  \"chunked_matches_contiguous\": true,\n  \"pool_chunked\": {},\n  \"pool_rotated\": {},\n  \"pool_contiguous\": {},\n  \"chunked_vs_contiguous_peak_ratio\": {:.4},\n  \"rss_ceiling_mb\": {ceiling_mb},\n  \"rss_ceiling_checked\": {rss_ceiling_ok},\n  \"rss_whole_run_bytes\": {},\n  \"total_wall_ms\": {total_wall_ms:.3},\n  \"phases\": [\n{}\n  ]\n}}\n",
        profile.name,
        net.n_edges(),
        mem_json(&cold),
        mem_json(&rotated),
        mem_json(&contig),
        cold.peak_bytes as f64 / contig.peak_bytes as f64,
        json_opt(rss_whole),
        phase_rows.join(",\n")
    );

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_scale.json");
    std::fs::write(&path, &json).expect("write BENCH_scale.json");
    println!("{json}");
    eprintln!("[bench_scale] written to {}", path.display());
}
