//! Figure 12: effect of |W| on FS.

#![forbid(unsafe_code)]
fn main() {
    sc_bench::comparison_figure(
        "fig12",
        "FS",
        sc_bench::AxisSel::Workers,
        "Effect of |W| on FS (five metrics, five algorithms)",
    );
}
