//! Figure 7: effect of the valid time φ on the AI of the IA variants.

#![forbid(unsafe_code)]
fn main() {
    sc_bench::ablation_figure(
        "fig07",
        "BK",
        sc_bench::AxisSel::ValidTime,
        "Effect of phi on Average Influence (ablation, BK)",
    );
    sc_bench::ablation_figure(
        "fig07",
        "FS",
        sc_bench::AxisSel::ValidTime,
        "Effect of phi on Average Influence (ablation, FS)",
    );
}
