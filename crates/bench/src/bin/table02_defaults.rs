//! Table II: the default parameter settings every experiment starts from.

#![forbid(unsafe_code)]
use sc_sim::{ExperimentScale, SweepValues};
fn main() {
    let scale = ExperimentScale::from_env();
    let d = scale.defaults();
    let paper = SweepValues::paper_defaults();
    println!("== Table II: parameter settings ==");
    println!("{:<32} {:>10} {:>12}", "Parameter", "paper", "this run");
    println!("{}", "-".repeat(58));
    println!(
        "{:<32} {:>10} {:>12}",
        "Number of tasks |S|", paper.n_tasks, d.n_tasks
    );
    println!(
        "{:<32} {:>10} {:>12}",
        "Number of workers |W|", paper.n_workers, d.n_workers
    );
    println!(
        "{:<32} {:>9}h {:>11}h",
        "Valid time of tasks phi", paper.options.valid_hours, d.options.valid_hours
    );
    println!(
        "{:<32} {:>8}km {:>10}km",
        "Workers' reachable radius r", paper.options.radius_km, d.options.radius_km
    );
    println!(
        "{:<32} {:>10} {:>12}",
        "Topics |Top|",
        50,
        sc_bench::config_for(scale).n_topics
    );
    println!(
        "{:<32} {:>10} {:>12}",
        "RPO epsilon",
        0.1,
        sc_bench::config_for(scale).rpo.epsilon
    );
    println!(
        "{:<32} {:>10} {:>12}",
        "RPO o",
        1,
        sc_bench::config_for(scale).rpo.o
    );
}
