//! Figure 13: effect of φ on BK.

#![forbid(unsafe_code)]
fn main() {
    sc_bench::comparison_figure(
        "fig13",
        "BK",
        sc_bench::AxisSel::ValidTime,
        "Effect of phi on BK (five metrics, five algorithms)",
    );
}
