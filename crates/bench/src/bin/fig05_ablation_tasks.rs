//! Figure 5: effect of |S| on the AI of the IA ablation variants
//! (IA, IA-WP, IA-AP, IA-AW), on both dataset profiles.

#![forbid(unsafe_code)]
fn main() {
    sc_bench::ablation_figure(
        "fig05",
        "BK",
        sc_bench::AxisSel::Tasks,
        "Effect of |S| on Average Influence (ablation, BK)",
    );
    sc_bench::ablation_figure(
        "fig05",
        "FS",
        sc_bench::AxisSel::Tasks,
        "Effect of |S| on Average Influence (ablation, FS)",
    );
}
