//! Figure 10: effect of |S| on FS.

#![forbid(unsafe_code)]
fn main() {
    sc_bench::comparison_figure(
        "fig10",
        "FS",
        sc_bench::AxisSel::Tasks,
        "Effect of |S| on FS (five metrics, five algorithms)",
    );
}
