//! Dataset-replay throughput and fold-in cost → `BENCH_replay.json`.
//!
//! Replays one day of a loaded trace (a synthetic BK-small dataset with
//! a truncated "late cohort" so the population is genuinely dynamic)
//! through `sc_sim::replay_day` and measures:
//!
//! * **rounds/s** — end-to-end replay throughput (training excluded);
//! * **fold-in cost vs full retrain** — the wall time of folding one
//!   unseen worker into the live model (graph rebuild + topic fold-in +
//!   willingness fit + RRR splice) against the cost of the full
//!   pipeline retrain it replaces;
//! * **bit-identity across thread budgets** — the replay is run at
//!   `threads = 1` and `threads = N` and the reports must compare
//!   equal, the same contract release CI pins in
//!   `crates/sim/tests/replay_determinism.rs`;
//! * **fold-in efficacy** — every folded worker is scored against a
//!   task at their first observed venue; the report records how many
//!   earn non-zero influence (the zero-influence trap this subsystem
//!   closes).
//!
//! ```text
//! cargo run --release -p sc-bench --bin bench_replay
//! DITA_BENCH_WORKERS=300 cargo run --release -p sc-bench --bin bench_replay
//! ```

#![forbid(unsafe_code)]

use sc_core::{AlgorithmKind, DitaBuilder, DitaConfig, OnlineConfig};
use sc_datagen::{DatasetProfile, LoadedDataset, ReplayOptions, SyntheticDataset};
use sc_influence::{Parallelism, RpoParams};
use sc_sim::replay_day;
use sc_types::{HistoryStore, TimeInstant, WorkerId};
use std::time::Instant;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The benchmark trace: a synthetic BK-small world where every
/// `late_every`-th worker's history is truncated to the replay day, so
/// they arrive unseen mid-replay.
fn build_trace(n_workers: usize, late_every: usize, day: i64, seed: u64) -> LoadedDataset {
    let mut profile = DatasetProfile::brightkite_small();
    profile.n_workers = n_workers;
    profile.n_venues = (n_workers / 2).max(40);
    profile.checkins_per_worker = 14;
    let data = SyntheticDataset::generate(&profile, seed);
    let mut store = HistoryStore::with_workers(profile.n_workers);
    for (w, history) in data.histories.iter() {
        for r in history.records() {
            if w.index() % late_every == 0 && r.arrived.day() < day {
                continue;
            }
            store.push(r.clone());
        }
    }
    LoadedDataset::from_parts(data.social_edges.clone(), store, seed).unwrap()
}

fn config(threads: usize) -> DitaConfig {
    DitaConfig {
        n_topics: 8,
        lda_sweeps: 15,
        infer_sweeps: 8,
        rpo: RpoParams {
            max_sets: env_usize("DITA_BENCH_SETS", 30_000),
            threads: Parallelism::Fixed(threads),
            ..Default::default()
        },
        online: OnlineConfig {
            round_hours: 1,
            growth_cap: 1_024,
            eviction_horizon: 6,
            target_sets: 0,
            incremental: true,
        },
        solver: Default::default(),
        seed: 0xD17A_0005,
    }
}

fn main() {
    let n_workers = env_usize("DITA_BENCH_WORKERS", 240);
    let late_every = env_usize("DITA_BENCH_LATE_EVERY", 8);
    let threads = env_usize("DITA_THREADS", 4).max(2);
    let day = 1i64;
    let seed = 0xD17A_0005u64;
    let algorithm = AlgorithmKind::Ia;
    let opts = ReplayOptions {
        task_every: 2,
        valid_hours: 3.0,
        ..Default::default()
    };

    eprintln!("[bench_replay] building trace ({n_workers} workers, 1 in {late_every} late)…");
    let data = build_trace(n_workers, late_every, day, seed);

    // --- Replay at the reference budget, timed. ------------------------
    eprintln!("[bench_replay] replaying day {day} (threads = 1)…");
    let t0 = Instant::now();
    let single = replay_day(&data, day, config(1), &opts, algorithm).expect("replay");
    let wall_single_s = t0.elapsed().as_secs_f64();

    eprintln!("[bench_replay] replaying day {day} (threads = {threads})…");
    let t1 = Instant::now();
    let multi = replay_day(&data, day, config(threads), &opts, algorithm).expect("replay");
    let wall_multi_s = t1.elapsed().as_secs_f64();

    // Bit-identity across budgets: the whole report, round for round.
    assert_eq!(
        single.report, multi.report,
        "replay reports must be bit-identical across thread budgets"
    );
    let deterministic = single.report == multi.report;

    let report = &multi.report;
    let rounds = report.rounds.len();
    let s = &report.summary;
    assert_eq!(s.published, s.assigned + s.expired + s.still_open);
    assert!(
        report.fold_ins() > 0,
        "the late cohort must trigger fold-ins"
    );

    // --- Fold-in efficacy: non-zero influence without a retrain. -------
    let scorer = multi.engine.pipeline().scorer();
    let mut nonzero = 0usize;
    for &(trace_id, dense) in &report.folded {
        let rec = &data.histories.history(trace_id).records()[0];
        let venue = data
            .venues
            .iter()
            .find(|v| v.id == rec.venue)
            .expect("venue reconstructed");
        let task = sc_types::Task::with_categories(
            sc_types::TaskId::new(900_000 + dense.raw()),
            venue.location,
            TimeInstant::at(day, 20),
            sc_types::Duration::hours(3),
            venue.categories.clone(),
        );
        if scorer.score(dense, &task) > 0.0 {
            nonzero += 1;
        }
    }
    drop(scorer);

    // --- Fold-in cost vs the full retrain it replaces. -----------------
    // Re-train on the slice, then time folding each late worker into a
    // fresh copy of the trained state — the exact work
    // `OnlineEngine::worker_arrives_new` does per arrival.
    eprintln!("[bench_replay] measuring fold-in vs full retrain…");
    let slice = data.training_slice(day).expect("slice");
    let cfg = config(threads);
    let mut retrain_ms = f64::INFINITY;
    for _ in 0..2 {
        let t = Instant::now();
        let p = DitaBuilder::new()
            .config(cfg)
            .build(&slice.social, &slice.histories)
            .expect("training");
        retrain_ms = retrain_ms.min(t.elapsed().as_secs_f64() * 1e3);
        assert_eq!(p.model().n_workers(), slice.social.n_workers());
    }
    let base = DitaBuilder::new()
        .config(cfg)
        .build(&slice.social, &slice.histories)
        .expect("training");
    let late: Vec<WorkerId> = report.folded.iter().map(|&(t, _)| t).collect();
    let mut pipeline = base.clone();
    let mut net = slice.social.clone();
    // Grow the trace→dense map exactly like replay_day does, so each
    // timed fold sees the same friend set (trained workers *and*
    // already-folded late arrivals) as the real per-arrival work.
    let mut to_dense = slice.to_dense.clone();
    let t2 = Instant::now();
    for trace_id in &late {
        let dense = WorkerId::from(pipeline.model().n_workers());
        let raw: Vec<u32> = data
            .social
            .informs(trace_id.raw())
            .iter()
            .filter_map(|f| to_dense.get(&WorkerId::new(*f)).map(|d| d.raw()))
            .collect();
        net = net.fold_in_worker(&raw);
        let mut evidence = sc_types::History::new();
        for r in data.histories.history(*trace_id).records() {
            let mut rec = r.clone();
            rec.worker = dense;
            evidence.push(rec);
        }
        pipeline.fold_in_worker(&net, &evidence);
        to_dense.insert(*trace_id, dense);
    }
    let fold_total_ms = t2.elapsed().as_secs_f64() * 1e3;
    let fold_avg_ms = fold_total_ms / late.len() as f64;
    let fold_speedup = retrain_ms / fold_avg_ms.max(1e-9);

    let rounds_per_sec = rounds as f64 / wall_multi_s;
    eprintln!(
        "[bench_replay] {rounds} rounds in {wall_multi_s:.2}s ({rounds_per_sec:.1} rounds/s); \
         threads=1 took {wall_single_s:.2}s; fold-in avg {fold_avg_ms:.2} ms vs retrain \
         {retrain_ms:.1} ms → {fold_speedup:.0}× cheaper; {}/{} folded workers score non-zero",
        nonzero,
        report.fold_ins()
    );

    assert!(
        fold_speedup >= 5.0,
        "fold-in must be at least 5× cheaper than a full retrain (got {fold_speedup:.1}×)"
    );
    assert!(
        nonzero > 0,
        "at least one folded worker must earn non-zero influence"
    );

    let json = format!(
        "{{\n  \"bench\": \"dataset_replay\",\n  \"trace_workers\": {n_workers},\n  \"late_every\": {late_every},\n  \"replay_day\": {day},\n  \"trained_workers\": {},\n  \"rounds\": {rounds},\n  \"checkins\": {},\n  \"tasks_published\": {},\n  \"assigned\": {},\n  \"assignment_rate\": {:.4},\n  \"average_influence\": {:.6},\n  \"rounds_per_sec\": {rounds_per_sec:.2},\n  \"wall_threads1_s\": {wall_single_s:.3},\n  \"wall_threadsN_s\": {wall_multi_s:.3},\n  \"bench_threads\": {threads},\n  \"host_threads\": {},\n  \"deterministic_across_threads\": {deterministic},\n  \"fold_ins\": {},\n  \"folded_nonzero_influence\": {nonzero},\n  \"fold_in_avg_ms\": {fold_avg_ms:.3},\n  \"full_retrain_ms\": {retrain_ms:.3},\n  \"fold_in_speedup\": {fold_speedup:.1},\n  \"full_retrains_during_replay\": 0\n}}\n",
        report.trained_workers,
        report.checkins,
        s.published,
        s.assigned,
        s.assignment_rate(),
        s.average_influence,
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        report.fold_ins(),
    );

    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_replay.json");
    std::fs::write(&path, &json).expect("write BENCH_replay.json");
    println!("{json}");
    eprintln!("[bench_replay] written to {}", path.display());
}
