//! # sc-bench — figure regeneration and micro-benchmarks
//!
//! One binary per evaluation figure (`src/bin/fig05_…` through
//! `fig16_…`) regenerates the corresponding series of the paper:
//!
//! ```text
//! DITA_SCALE=paper cargo run --release -p sc-bench --bin fig09_tasks_bk
//! ```
//!
//! Without `DITA_SCALE=paper` the binaries run the 10×-reduced profiles
//! (minutes instead of hours). Each binary prints the series as aligned
//! tables and writes a CSV next to the repository root under `results/`.
//!
//! Criterion micro-benches live in `benches/` (MCMF, RRR/RPO, LDA,
//! willingness, end-to-end assignment, plus the ablation benches listed
//! in `DESIGN.md`).

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]

use sc_core::DitaConfig;
use sc_influence::RpoParams;
use sc_sim::{
    render_table, to_csv, AblationPoint, ComparisonPoint, ExperimentRunner, ExperimentScale,
    SweepAxis,
};
use std::path::PathBuf;

/// Which Table II axis a figure sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxisSel {
    /// |S| sweep.
    Tasks,
    /// |W| sweep.
    Workers,
    /// φ sweep.
    ValidTime,
    /// r sweep.
    Radius,
}

impl AxisSel {
    fn resolve(self, scale: ExperimentScale) -> SweepAxis {
        match self {
            AxisSel::Tasks => scale.tasks_axis(),
            AxisSel::Workers => scale.workers_axis(),
            AxisSel::ValidTime => scale.valid_time_axis(),
            AxisSel::Radius => scale.radius_axis(),
        }
    }
}

/// DITA configuration appropriate for the scale.
pub fn config_for(scale: ExperimentScale) -> DitaConfig {
    match scale {
        ExperimentScale::Paper => DitaConfig::default(),
        ExperimentScale::Small => DitaConfig {
            n_topics: 12,
            lda_sweeps: 25,
            infer_sweeps: 10,
            rpo: RpoParams {
                max_sets: 30_000,
                ..Default::default()
            },
            seed: 0xD17A,
            ..Default::default()
        },
    }
}

/// Builds the trained runner for a dataset family at the env scale.
///
/// The sampling thread budget comes from `DITA_THREADS` (unset/`0` =
/// one shard per core); results are bit-identical at any setting.
pub fn runner_for(family: &str) -> (ExperimentRunner, ExperimentScale) {
    let scale = ExperimentScale::from_env();
    let threads = sc_influence::Parallelism::from_env();
    let profile = scale.profile(family);
    eprintln!(
        "[sc-bench] dataset {} ({} workers, {} venues), scale {:?}, threads {} — training DITA…",
        profile.name, profile.n_workers, profile.n_venues, scale, threads
    );
    let runner = ExperimentRunner::with_threads(&profile, 0xBEEF, config_for(scale), threads)
        .days(scale.n_days());
    let stats = runner.pipeline().model().rpo_stats();
    eprintln!(
        "[sc-bench] RPO pool: {} sets (rounds {}, σ_lb {:.2}, capped {}, \
         search {:.0} ms + top-up {:.0} ms, thread budget {})",
        stats.n_sets,
        stats.rounds,
        stats.sigma_lower_bound,
        stats.capped,
        stats.search_ms,
        stats.topup_ms,
        stats.threads
    );
    (runner, scale)
}

fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

fn write_results(name: &str, csv: &str) {
    let path = results_dir().join(format!("{name}.csv"));
    std::fs::write(&path, csv).expect("write results csv");
    println!("\n[results written to {}]", path.display());
}

/// Runs and prints a comparison figure (Figures 9–16): the five
/// algorithms over one axis, all five metrics.
pub fn comparison_figure(fig: &str, family: &str, axis_sel: AxisSel, caption: &str) {
    let (runner, scale) = runner_for(family);
    let axis = axis_sel.resolve(scale);
    let defaults = scale.defaults();
    let points = runner.run_comparison(&axis, &defaults);
    print_comparison(fig, caption, &axis, &points);
    write_results(&format!("{fig}_{family}"), &comparison_csv(&axis, &points));
}

/// Runs and prints an ablation figure (Figures 5–8): AI of the four IA
/// variants over one axis.
pub fn ablation_figure(fig: &str, family: &str, axis_sel: AxisSel, caption: &str) {
    let (runner, scale) = runner_for(family);
    let axis = axis_sel.resolve(scale);
    let defaults = scale.defaults();
    let points = runner.run_ablation(&axis, &defaults);
    print_ablation(fig, caption, &axis, &points);
    write_results(&format!("{fig}_{family}"), &ablation_csv(&axis, &points));
}

/// Prints every metric of a comparison sweep as an `x × algorithm` table.
fn print_comparison(fig: &str, caption: &str, axis: &SweepAxis, points: &[ComparisonPoint]) {
    println!("== {fig}: {caption} ==");
    type MetricGetter = fn(&sc_sim::MetricsRow) -> f64;
    let metrics: [(&str, MetricGetter); 5] = [
        ("CPU time (ms)", |r| r.cpu_ms),
        ("assigned tasks", |r| r.assigned),
        ("Average Influence (AI)", |r| r.ai),
        ("Average Propagation (AP)", |r| r.ap),
        ("travel cost (km)", |r| r.travel_km),
    ];
    for (metric_name, get) in metrics {
        println!("\n-- {metric_name} --");
        let algo_names: Vec<String> = points
            .first()
            .map(|p| p.rows.iter().map(|r| r.algorithm.clone()).collect())
            .unwrap_or_default();
        let mut headers: Vec<&str> = vec![axis.name()];
        for name in &algo_names {
            headers.push(name);
        }
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                let mut row = vec![format_x(p.x)];
                for r in &p.rows {
                    row.push(format!("{:.4}", get(r)));
                }
                row
            })
            .collect();
        print!("{}", render_table(&headers, &rows));
    }
}

fn print_ablation(fig: &str, caption: &str, axis: &SweepAxis, points: &[AblationPoint]) {
    println!("== {fig}: {caption} ==");
    println!("\n-- Average Influence (AI) --");
    let variant_names: Vec<String> = points
        .first()
        .map(|p| p.ai.iter().map(|(l, _)| l.clone()).collect())
        .unwrap_or_default();
    let mut headers: Vec<&str> = vec![axis.name()];
    for name in &variant_names {
        headers.push(name);
    }
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let mut row = vec![format_x(p.x)];
            for (_, ai) in &p.ai {
                row.push(format!("{ai:.4}"));
            }
            row
        })
        .collect();
    print!("{}", render_table(&headers, &rows));
}

/// Flat CSV of a comparison sweep.
pub fn comparison_csv(axis: &SweepAxis, points: &[ComparisonPoint]) -> String {
    let headers = [
        axis.name(),
        "algorithm",
        "cpu_ms",
        "assigned",
        "ai",
        "ap",
        "travel_km",
    ];
    let rows: Vec<Vec<String>> = points
        .iter()
        .flat_map(|p| {
            p.rows.iter().map(move |r| {
                vec![
                    format_x(p.x),
                    r.algorithm.clone(),
                    format!("{:.6}", r.cpu_ms),
                    format!("{:.3}", r.assigned),
                    format!("{:.6}", r.ai),
                    format!("{:.6}", r.ap),
                    format!("{:.6}", r.travel_km),
                ]
            })
        })
        .collect();
    to_csv(&headers, &rows)
}

/// Flat CSV of an ablation sweep.
pub fn ablation_csv(axis: &SweepAxis, points: &[AblationPoint]) -> String {
    let headers = [axis.name(), "variant", "ai"];
    let rows: Vec<Vec<String>> = points
        .iter()
        .flat_map(|p| {
            p.ai.iter()
                .map(move |(label, ai)| vec![format_x(p.x), label.clone(), format!("{ai:.6}")])
        })
        .collect();
    to_csv(&headers, &rows)
}

fn format_x(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x as i64)
    } else {
        format!("{x:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_sim::{AblationPoint, ComparisonPoint, MetricsRow, SweepAxis};

    fn point(x: f64) -> ComparisonPoint {
        ComparisonPoint {
            x,
            rows: vec![MetricsRow {
                algorithm: "IA".into(),
                cpu_ms: 1.5,
                assigned: 10.0,
                ai: 0.25,
                ap: 3.0,
                travel_km: 4.5,
            }],
        }
    }

    #[test]
    fn comparison_csv_has_row_per_algorithm_and_point() {
        let axis = SweepAxis::Tasks(vec![100, 200]);
        let csv = comparison_csv(&axis, &[point(100.0), point(200.0)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "header + 2 data rows");
        assert!(lines[0].starts_with("|S|,algorithm,"));
        assert!(lines[1].starts_with("100,IA,"));
        assert!(lines[2].starts_with("200,IA,"));
    }

    #[test]
    fn ablation_csv_flattens_variants() {
        let axis = SweepAxis::RadiusKm(vec![5.0]);
        let points = vec![AblationPoint {
            x: 5.0,
            ai: vec![("IA".into(), 0.2), ("IA-WP".into(), 0.1)],
        }];
        let csv = ablation_csv(&axis, &points);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("IA,0.2"));
        assert!(lines[2].contains("IA-WP,0.1"));
    }

    #[test]
    fn format_x_drops_trailing_zero_for_integers() {
        assert_eq!(format_x(1500.0), "1500");
        assert_eq!(format_x(2.5), "2.5");
    }

    #[test]
    fn config_scales_with_experiment_scale() {
        let small = config_for(sc_sim::ExperimentScale::Small);
        let paper = config_for(sc_sim::ExperimentScale::Paper);
        assert!(small.n_topics < paper.n_topics);
        assert_eq!(paper.n_topics, 50);
    }
}
