//! LDA training and inference benchmarks (paper Section III-A) plus the
//! `lda_sweeps` ablation from DESIGN.md: how Gibbs sweep count trades
//! training time for affinity quality.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sc_topics::{Corpus, LdaParams, LdaTrainer};
use std::hint::black_box;

/// Synthetic worker-document corpus with `n_docs` docs over `n_words`
/// words grouped into recoverable themes.
fn corpus(n_docs: usize, n_words: usize, doc_len: usize, seed: u64) -> Corpus {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_themes = 8.min(n_words);
    let theme_size = n_words / n_themes;
    let docs: Vec<Vec<u32>> = (0..n_docs)
        .map(|d| {
            let theme = d % n_themes;
            (0..doc_len)
                .map(|_| {
                    let w = if rng.random_bool(0.85) {
                        theme * theme_size + rng.random_range(0..theme_size)
                    } else {
                        rng.random_range(0..n_words)
                    };
                    w as u32
                })
                .collect()
        })
        .collect();
    Corpus::from_documents(docs)
}

fn bench_training_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("lda_training");
    group.sample_size(10);
    for &n_docs in &[200usize, 800] {
        let corp = corpus(n_docs, 120, 30, 1);
        group.bench_with_input(BenchmarkId::new("docs", n_docs), &n_docs, |b, _| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(2);
                let trainer = LdaTrainer::new(LdaParams::with_topics(20).sweeps(20));
                black_box(trainer.train(&corp, &mut rng))
            });
        });
    }
    group.finish();
}

/// The `lda_sweeps` ablation: sweep count vs wall time (quality is
/// checked in sc-topics tests; here we measure the cost side).
fn bench_sweep_ablation(c: &mut Criterion) {
    let corp = corpus(300, 120, 30, 3);
    let mut group = c.benchmark_group("lda_sweeps");
    group.sample_size(10);
    for &sweeps in &[10usize, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(sweeps), &sweeps, |b, &s| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(4);
                let trainer = LdaTrainer::new(LdaParams::with_topics(20).sweeps(s));
                black_box(trainer.train(&corp, &mut rng))
            });
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let corp = corpus(300, 120, 30, 5);
    let mut rng = SmallRng::seed_from_u64(6);
    let model = LdaTrainer::new(LdaParams::with_topics(20).sweeps(30)).train(&corp, &mut rng);
    let doc: Vec<u32> = (0..6).collect();
    c.bench_function("lda_infer_task_document", |b| {
        b.iter(|| {
            let mut r = SmallRng::seed_from_u64(7);
            black_box(model.infer(&doc, 10, &mut r))
        });
    });
}

criterion_group!(
    benches,
    bench_training_scaling,
    bench_sweep_ablation,
    bench_inference
);
criterion_main!(benches);
