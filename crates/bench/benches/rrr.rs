//! RRR-set sampling and RPO benchmarks (paper Sections III-C and III-E).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sc_datagen::generate_social_edges;
use sc_influence::{Parallelism, PropagationModel, Rpo, RpoParams, RrrPool, SocialNetwork};
use std::hint::black_box;

fn network(n: usize, seed: u64) -> SocialNetwork {
    let mut rng = SmallRng::seed_from_u64(seed);
    let edges = generate_social_edges(n, 4, &mut rng);
    SocialNetwork::from_undirected_edges(n, &edges)
}

fn bench_pool_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("rrr_pool_generation");
    group.sample_size(10);
    for &n in &[500usize, 2000] {
        let net = network(n, 1);
        group.bench_with_input(BenchmarkId::new("sets_10k", n), &n, |b, _| {
            b.iter(|| {
                // Pinned to one thread so timings compare across machines.
                black_box(RrrPool::generate_sharded(
                    &net,
                    10_000,
                    PropagationModel::WeightedCascade,
                    2,
                    1,
                ))
            });
        });
    }
    group.finish();
}

fn bench_rpo_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("rpo_algorithm1");
    group.sample_size(10);
    for &n in &[500usize, 2000] {
        let net = network(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(4);
                let rpo = Rpo::new(RpoParams {
                    max_sets: 50_000,
                    threads: Parallelism::Single,
                    ..Default::default()
                });
                black_box(rpo.build_pool(&net, &mut rng))
            });
        });
    }
    group.finish();
}

fn bench_estimators(c: &mut Criterion) {
    let net = network(2000, 5);
    let mut rng = SmallRng::seed_from_u64(6);
    let pool = RrrPool::generate(&net, 50_000, &mut rng);
    let weights = vec![0.5f64; 2000];

    let mut group = c.benchmark_group("rrr_estimators");
    group.bench_function("sigma_all_workers", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for w in 0..2000u32 {
                acc += pool.sigma(w);
            }
            black_box(acc)
        });
    });
    group.bench_function("weighted_propagation_all_workers", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for w in 0..2000u32 {
                acc += pool.weighted_propagation(w, &weights);
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pool_generation,
    bench_rpo_end_to_end,
    bench_estimators
);
criterion_main!(benches);
