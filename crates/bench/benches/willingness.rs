//! Willingness-model benchmarks (paper Section III-B): fitting the
//! Historical Acceptance model and the per-task population evaluation
//! that dominates influence scoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_datagen::{DatasetProfile, SyntheticDataset};
use sc_mobility::WillingnessModel;
use sc_types::Location;
use std::hint::black_box;

fn dataset() -> SyntheticDataset {
    let mut profile = DatasetProfile::brightkite_small();
    profile.n_workers = 1_000;
    profile.n_venues = 800;
    profile.checkins_per_worker = 20;
    SyntheticDataset::generate(&profile, 11)
}

fn bench_fit(c: &mut Criterion) {
    let data = dataset();
    let mut group = c.benchmark_group("willingness_fit");
    group.sample_size(10);
    group.bench_function("fit_1000_workers", |b| {
        b.iter(|| black_box(WillingnessModel::fit(&data.histories)));
    });
    group.finish();
}

fn bench_eval(c: &mut Criterion) {
    let data = dataset();
    let model = WillingnessModel::fit(&data.histories);
    let mut group = c.benchmark_group("willingness_eval");
    for &n_targets in &[10usize, 100] {
        group.bench_with_input(
            BenchmarkId::new("population_eval_targets", n_targets),
            &n_targets,
            |b, &n| {
                let targets: Vec<Location> = (0..n)
                    .map(|i| Location::new(i as f64 * 2.5, (i % 7) as f64 * 3.0))
                    .collect();
                let mut buf = Vec::new();
                b.iter(|| {
                    let mut acc = 0.0;
                    for t in &targets {
                        model.willingness_all(t, &mut buf);
                        acc += buf.iter().sum::<f64>();
                    }
                    black_box(acc)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_eval);
criterion_main!(benches);
