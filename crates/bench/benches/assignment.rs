//! End-to-end per-instance assignment benchmarks: the CPU-time metric of
//! the paper's comparison figures, per algorithm, at a fixed instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sc_assign::{run_with_matrix, AlgorithmKind, AssignInput, EligibilityMatrix};
use sc_core::{DitaBuilder, DitaConfig};
use sc_datagen::{DatasetProfile, InstanceOptions, SyntheticDataset};
use sc_influence::RpoParams;
use std::hint::black_box;

fn setup() -> (SyntheticDataset, sc_core::DitaPipeline) {
    let mut profile = DatasetProfile::brightkite_small();
    profile.n_workers = 600;
    profile.n_venues = 600;
    let dataset = SyntheticDataset::generate(&profile, 21);
    let pipeline = DitaBuilder::new()
        .config(DitaConfig {
            n_topics: 12,
            lda_sweeps: 20,
            infer_sweeps: 10,
            rpo: RpoParams {
                max_sets: 20_000,
                ..Default::default()
            },
            seed: 1,
            ..Default::default()
        })
        .build(&dataset.social, &dataset.histories)
        .expect("training");
    (dataset, pipeline)
}

fn bench_algorithms(c: &mut Criterion) {
    let (dataset, pipeline) = setup();
    let day = dataset.instance_for_day(0, 150, 120, InstanceOptions::default());
    let matrix = EligibilityMatrix::build(&day.instance);
    let scorer = pipeline.scorer();
    let entropies = pipeline.model().task_entropies(&day.task_venues);
    // Warm the per-task caches so the benchmark isolates assignment time.
    for pair in matrix.pairs() {
        let w = &day.instance.workers[pair.worker_idx as usize];
        let t = &day.instance.tasks[pair.task_idx as usize];
        let _ = scorer.score(w.id, t);
    }

    let mut group = c.benchmark_group("assignment_per_instance");
    for kind in AlgorithmKind::COMPARISON {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.to_string()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let input = AssignInput::new(&day.instance, &scorer).with_entropy(&entropies);
                    black_box(run_with_matrix(kind, &input, &matrix))
                });
            },
        );
    }
    group.finish();
}

fn bench_eligibility(c: &mut Criterion) {
    let (dataset, _) = setup();
    let mut group = c.benchmark_group("eligibility_matrix");
    for &(s, w) in &[(100usize, 80usize), (300, 240)] {
        let day = dataset.instance_for_day(0, s, w, InstanceOptions::default());
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("S{s}_W{w}")),
            &day,
            |b, day| {
                b.iter(|| black_box(EligibilityMatrix::build(&day.instance)));
            },
        );
    }
    group.finish();
}

fn bench_influence_scoring(c: &mut Criterion) {
    let (dataset, pipeline) = setup();
    let day = dataset.instance_for_day(1, 150, 120, InstanceOptions::default());
    let matrix = EligibilityMatrix::build(&day.instance);
    c.bench_function("influence_score_all_pairs_cold", |b| {
        b.iter(|| {
            let scorer = pipeline.scorer(); // fresh cache each iteration
            let mut acc = 0.0;
            for pair in matrix.pairs() {
                let w = &day.instance.workers[pair.worker_idx as usize];
                let t = &day.instance.tasks[pair.task_idx as usize];
                acc += scorer.score(w.id, t);
            }
            black_box(acc)
        });
    });
}

criterion_group!(
    benches,
    bench_algorithms,
    bench_eligibility,
    bench_influence_scoring
);
criterion_main!(benches);
