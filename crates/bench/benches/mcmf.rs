//! Min-cost max-flow micro-benchmarks — the per-instance kernel of every
//! influence-aware algorithm (paper Section IV-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sc_graph::{Dinic, MinCostMaxFlow};
use std::hint::black_box;

/// Random bipartite assignment instance: `n` workers, `n` tasks,
/// `degree` candidate tasks per worker.
fn random_instance(n: usize, degree: usize, seed: u64) -> Vec<(usize, usize, f64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n * degree);
    for w in 0..n {
        for _ in 0..degree {
            let t = rng.random_range(0..n);
            let cost = 1.0 / (rng.random::<f64>() * 5.0 + 1.0);
            edges.push((w, t, cost));
        }
    }
    edges
}

fn mcmf_solve(n: usize, edges: &[(usize, usize, f64)]) -> (i64, f64) {
    let (s, t) = (2 * n, 2 * n + 1);
    let mut g = MinCostMaxFlow::new(2 * n + 2);
    for w in 0..n {
        g.add_edge(s, w, 1, 0.0);
    }
    for task in 0..n {
        g.add_edge(n + task, t, 1, 0.0);
    }
    for &(w, task, c) in edges {
        g.add_edge(w, n + task, 1, c);
    }
    let r = g.run(s, t);
    (r.flow, r.cost)
}

fn dinic_solve(n: usize, edges: &[(usize, usize, f64)]) -> i64 {
    let (s, t) = (2 * n, 2 * n + 1);
    let mut g = Dinic::new(2 * n + 2);
    for w in 0..n {
        g.add_edge(s, w, 1);
    }
    for task in 0..n {
        g.add_edge(n + task, t, 1);
    }
    for &(w, task, _) in edges {
        g.add_edge(w, n + task, 1);
    }
    g.max_flow(s, t)
}

fn bench_mcmf_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcmf_assignment_graph");
    group.sample_size(20);
    for &n in &[50usize, 150, 400] {
        let edges = random_instance(n, 8, 42);
        group.bench_with_input(BenchmarkId::new("mcmf", n), &n, |b, &n| {
            b.iter(|| black_box(mcmf_solve(n, &edges)));
        });
        group.bench_with_input(BenchmarkId::new("dinic_maxflow", n), &n, |b, &n| {
            b.iter(|| black_box(dinic_solve(n, &edges)));
        });
    }
    group.finish();
}

fn bench_mcmf_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcmf_edge_density");
    group.sample_size(20);
    for &degree in &[4usize, 16, 32] {
        let edges = random_instance(150, degree, 7);
        group.bench_with_input(BenchmarkId::from_parameter(degree), &degree, |b, _| {
            b.iter(|| black_box(mcmf_solve(150, &edges)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mcmf_scaling, bench_mcmf_density);
criterion_main!(benches);
