//! Ablation benches for the design choices called out in DESIGN.md §5:
//!
//! * `rrr_pool_vs_perworker` — one shared RRR pool versus re-running
//!   Algorithm 1's sampling for every source worker.
//! * `mcmf_spfa_vs_bf` — SPFA versus textbook Bellman–Ford inside the
//!   min-cost max-flow solver.
//! * `mcmf_cost_repr` — raw `f64` costs versus integer-quantized costs
//!   (quantization changes relaxation patterns and tie behaviour).
//! * `grid_cell_size` — eligibility query cost versus grid granularity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sc_datagen::{generate_social_edges, DatasetProfile, InstanceOptions, SyntheticDataset};
use sc_graph::{MinCostMaxFlow, ShortestPathEngine};
use sc_influence::{PropagationModel, RrrPool, SocialNetwork};
use sc_spatial::GridIndex;
use sc_types::Location;
use std::hint::black_box;

fn bench_rrr_pool_vs_perworker(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let n = 800;
    let edges = generate_social_edges(n, 4, &mut rng);
    let net = SocialNetwork::from_undirected_edges(n, &edges);
    let n_sets = 8_000;
    let n_sources = 20; // candidate workers scored per task batch

    let mut group = c.benchmark_group("rrr_pool_vs_perworker");
    group.sample_size(10);
    group.bench_function("shared_pool_once", |b| {
        b.iter(|| {
            // Pinned to one thread so timings compare across machines.
            let pool =
                RrrPool::generate_sharded(&net, n_sets, PropagationModel::WeightedCascade, 2, 1);
            let mut acc = 0.0;
            for w in 0..n_sources {
                acc += pool.total_propagation(w);
            }
            black_box(acc)
        });
    });
    group.bench_function("per_worker_regeneration", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for w in 0..n_sources {
                // Algorithm 1 run per source worker: fresh sampling each time.
                let pool = RrrPool::generate_sharded(
                    &net,
                    n_sets,
                    PropagationModel::WeightedCascade,
                    3 + w as u64,
                    1,
                );
                acc += pool.total_propagation(w);
            }
            black_box(acc)
        });
    });
    group.finish();
}

fn assignment_edges(n: usize, degree: usize, seed: u64) -> Vec<(usize, usize, f64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .flat_map(|w| {
            let mut rng2 = SmallRng::seed_from_u64(seed ^ (w as u64) << 17);
            (0..degree)
                .map(move |_| {
                    (
                        w,
                        rng2.random_range(0..n),
                        1.0 / (rng2.random::<f64>() * 4.0 + 1.0),
                    )
                })
                .collect::<Vec<_>>()
        })
        .inspect(|_| {
            let _ = rng.random::<u8>();
        })
        .collect()
}

fn solve(
    engine: ShortestPathEngine,
    n: usize,
    edges: &[(usize, usize, f64)],
    quantize: bool,
) -> f64 {
    let (s, t) = (2 * n, 2 * n + 1);
    let mut g = MinCostMaxFlow::new(2 * n + 2).with_engine(engine);
    for w in 0..n {
        g.add_edge(s, w, 1, 0.0);
    }
    for task in 0..n {
        g.add_edge(n + task, t, 1, 0.0);
    }
    for &(w, task, cost) in edges {
        let cost = if quantize {
            (cost * 10_000.0).round() / 10_000.0
        } else {
            cost
        };
        g.add_edge(w, n + task, 1, cost);
    }
    g.run(s, t).cost
}

fn bench_mcmf_spfa_vs_bf(c: &mut Criterion) {
    let n = 150;
    let edges = assignment_edges(n, 8, 5);
    let mut group = c.benchmark_group("mcmf_spfa_vs_bf");
    group.sample_size(10);
    group.bench_function("spfa", |b| {
        b.iter(|| black_box(solve(ShortestPathEngine::Spfa, n, &edges, false)));
    });
    group.bench_function("bellman_ford", |b| {
        b.iter(|| black_box(solve(ShortestPathEngine::BellmanFord, n, &edges, false)));
    });
    group.finish();
}

fn bench_mcmf_cost_repr(c: &mut Criterion) {
    let n = 150;
    let edges = assignment_edges(n, 8, 9);
    let mut group = c.benchmark_group("mcmf_cost_repr");
    group.sample_size(10);
    group.bench_function("f64_raw", |b| {
        b.iter(|| black_box(solve(ShortestPathEngine::Spfa, n, &edges, false)));
    });
    group.bench_function("quantized_1e4", |b| {
        b.iter(|| black_box(solve(ShortestPathEngine::Spfa, n, &edges, true)));
    });
    group.finish();
}

fn bench_grid_cell_size(c: &mut Criterion) {
    let data = SyntheticDataset::generate(&DatasetProfile::brightkite_small(), 31);
    let day = data.instance_for_day(0, 300, 200, InstanceOptions::default());
    let task_locs: Vec<Location> = day.instance.tasks.iter().map(|t| t.location).collect();

    let mut group = c.benchmark_group("grid_cell_size");
    for &cell in &[1.0f64, 5.0, 12.5, 50.0] {
        group.bench_with_input(BenchmarkId::from_parameter(cell), &cell, |b, &cell| {
            let grid = GridIndex::build(&task_locs, cell);
            b.iter(|| {
                let mut acc = 0usize;
                for w in &day.instance.workers {
                    acc += grid.count_within(&w.location, w.radius_km);
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rrr_pool_vs_perworker,
    bench_mcmf_spfa_vs_bf,
    bench_mcmf_cost_repr,
    bench_grid_cell_size
);
criterion_main!(benches);
