//! Workspace-level integration tests.
//!
//! The smoke half asserts the acceptance criterion directly: `sc-lint
//! check` is clean on the checked-in tree (what CI runs). The seeded
//! half proves the tool is not vacuously green — injecting a hash-map
//! iteration into sc-assign's file set produces a D001 finding at the
//! expected line.

use sc_lint::{analyze, load_workspace, Rule, SourceFile};
use std::path::Path;

fn workspace_files() -> Vec<SourceFile> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    load_workspace(&root).expect("walk workspace sources")
}

#[test]
fn head_workspace_is_clean() {
    let files = workspace_files();
    assert!(
        files.len() > 50,
        "walker should see the whole workspace, got {} files",
        files.len()
    );
    let findings = analyze(&files);
    assert!(
        findings.is_empty(),
        "HEAD must be lint-clean; found:\n{}",
        sc_lint::render_text(&findings)
    );
}

#[test]
fn seeded_hashmap_iteration_in_assign_is_caught() {
    let mut files = workspace_files();
    files.push(SourceFile {
        path: "crates/assign/src/seeded_violation.rs".to_string(),
        text: "\
use std::collections::HashMap;

pub fn leak_order(scores: &HashMap<u64, f64>) -> Vec<(u64, f64)> {
    let mut out = Vec::new();
    for (w, s) in scores.iter() {
        out.push((*w, *s));
    }
    out
}
"
        .to_string(),
    });
    let findings = analyze(&files);
    let seeded: Vec<_> = findings
        .iter()
        .filter(|f| f.file == "crates/assign/src/seeded_violation.rs" && f.rule == Rule::D001)
        .collect();
    assert_eq!(
        seeded.len(),
        1,
        "exactly the seeded iteration should fire:\n{}",
        sc_lint::render_text(&findings)
    );
    assert_eq!(seeded[0].line, 5, "{:?}", seeded[0]);
}

#[test]
fn seeded_entropy_outside_assign_is_also_caught() {
    // D002/D004/S001 are workspace-wide; prove a non-report-affecting
    // crate is still covered.
    let mut files = workspace_files();
    files.push(SourceFile {
        path: "crates/bench/src/seeded_entropy.rs".to_string(),
        text: "pub fn jitter() -> u64 {\n    rand::thread_rng().next_u64()\n}\n".to_string(),
    });
    let findings = analyze(&files);
    assert!(
        findings
            .iter()
            .any(|f| f.file == "crates/bench/src/seeded_entropy.rs"
                && f.rule == Rule::D002
                && f.line == 2),
        "seeded thread_rng must be caught:\n{}",
        sc_lint::render_text(&findings)
    );
}
