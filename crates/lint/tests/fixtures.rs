//! Fixture-driven self-tests for every rule.
//!
//! Each rule directory under `tests/fixtures/` holds a `trigger.rs`
//! (must produce findings at known lines), an `ok.rs` (must produce
//! none), and a `suppressed.rs` (violations excused via `lint:allow`
//! with a reason, so none survive). The fixtures are plain source
//! *data* — they are never compiled; the driver feeds them to
//! [`sc_lint::analyze`] under synthetic workspace paths.

use sc_lint::{analyze, Finding, Rule, SourceFile};

/// A path inside a report-affecting crate (D001's scope).
const ASSIGN_PATH: &str = "crates/assign/src/fixture.rs";
/// A path outside the report-affecting set.
const BENCH_PATH: &str = "crates/bench/src/fixture.rs";

fn fixture(rule_dir: &str, name: &str) -> String {
    let path = format!(
        "{}/tests/fixtures/{rule_dir}/{name}",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

fn analyze_at(path: &str, text: String) -> Vec<Finding> {
    analyze(&[SourceFile {
        path: path.to_string(),
        text,
    }])
}

/// Lines at which `rule` fired, sorted (analyze sorts by line already).
fn lines(findings: &[Finding], rule: Rule) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

// ---------------------------------------------------------------- D001

#[test]
fn d001_trigger_flags_every_iteration_shape() {
    let findings = analyze_at(ASSIGN_PATH, fixture("d001", "trigger.rs"));
    assert_eq!(
        lines(&findings, Rule::D001),
        vec![15, 23, 28, 32, 38],
        "into_iter, values, for-in-&set, drain, for-in-&self.field: {findings:?}"
    );
}

#[test]
fn d001_ok_lookups_and_ordered_maps_pass() {
    let findings = analyze_at(ASSIGN_PATH, fixture("d001", "ok.rs"));
    assert_eq!(
        lines(&findings, Rule::D001),
        Vec::<u32>::new(),
        "{findings:?}"
    );
}

#[test]
fn d001_suppressed_with_reason_passes() {
    let findings = analyze_at(ASSIGN_PATH, fixture("d001", "suppressed.rs"));
    assert_eq!(
        lines(&findings, Rule::D001),
        Vec::<u32>::new(),
        "{findings:?}"
    );
}

#[test]
fn d001_does_not_apply_outside_report_affecting_crates() {
    let findings = analyze_at(BENCH_PATH, fixture("d001", "trigger.rs"));
    assert_eq!(
        lines(&findings, Rule::D001),
        Vec::<u32>::new(),
        "sc-bench may iterate hash maps freely: {findings:?}"
    );
}

// ---------------------------------------------------------------- D002

#[test]
fn d002_trigger_flags_all_entropy_sources() {
    let findings = analyze_at(BENCH_PATH, fixture("d002", "trigger.rs"));
    assert_eq!(
        lines(&findings, Rule::D002),
        vec![5, 7, 8],
        "thread_rng, rand::random, from_entropy: {findings:?}"
    );
}

#[test]
fn d002_ok_seeded_streams_pass() {
    let findings = analyze_at(BENCH_PATH, fixture("d002", "ok.rs"));
    assert_eq!(
        lines(&findings, Rule::D002),
        Vec::<u32>::new(),
        "{findings:?}"
    );
}

#[test]
fn d002_suppressed_with_reason_passes() {
    let findings = analyze_at(BENCH_PATH, fixture("d002", "suppressed.rs"));
    assert_eq!(
        lines(&findings, Rule::D002),
        Vec::<u32>::new(),
        "{findings:?}"
    );
}

// ---------------------------------------------------------------- D003

#[test]
fn d003_trigger_flags_literal_shorthand_and_store() {
    let findings = analyze_at(BENCH_PATH, fixture("d003", "trigger.rs"));
    assert_eq!(
        lines(&findings, Rule::D003),
        vec![17, 27, 30],
        "direct literal entry, tainted shorthand, field store: {findings:?}"
    );
}

#[test]
fn d003_ok_annotated_and_uncompared_pass() {
    let findings = analyze_at(BENCH_PATH, fixture("d003", "ok.rs"));
    assert_eq!(
        lines(&findings, Rule::D003),
        Vec::<u32>::new(),
        "{findings:?}"
    );
}

#[test]
fn d003_suppressed_with_reason_passes() {
    let findings = analyze_at(BENCH_PATH, fixture("d003", "suppressed.rs"));
    assert_eq!(
        lines(&findings, Rule::D003),
        Vec::<u32>::new(),
        "{findings:?}"
    );
}

// ---------------------------------------------------------------- D004

#[test]
fn d004_trigger_flags_adhoc_scoped_threads() {
    let findings = analyze_at(BENCH_PATH, fixture("d004", "trigger.rs"));
    assert_eq!(
        lines(&findings, Rule::D004),
        vec![5, 18],
        "qualified and imported thread::scope: {findings:?}"
    );
}

#[test]
fn d004_ok_sc_stats_par_passes() {
    let findings = analyze_at(BENCH_PATH, fixture("d004", "ok.rs"));
    assert_eq!(
        lines(&findings, Rule::D004),
        Vec::<u32>::new(),
        "{findings:?}"
    );
}

#[test]
fn d004_suppressed_with_reason_passes() {
    let findings = analyze_at(BENCH_PATH, fixture("d004", "suppressed.rs"));
    assert_eq!(
        lines(&findings, Rule::D004),
        Vec::<u32>::new(),
        "{findings:?}"
    );
}

// ---------------------------------------------------------------- S001

#[test]
fn s001_trigger_undocumented_unsafe() {
    let findings = analyze_at(
        "crates/demo/src/lib.rs",
        fixture("s001", "trigger_missing_safety.rs"),
    );
    assert_eq!(
        lines(&findings, Rule::S001),
        vec![4],
        "unsafe without SAFETY comment: {findings:?}"
    );
}

#[test]
fn s001_trigger_missing_forbid_on_clean_crate() {
    let findings = analyze_at(
        "crates/demo/src/lib.rs",
        fixture("s001", "trigger_missing_forbid.rs"),
    );
    assert_eq!(
        lines(&findings, Rule::S001),
        vec![1],
        "unsafe-free root without #![forbid(unsafe_code)]: {findings:?}"
    );
}

#[test]
fn s001_ok_forbid_declared() {
    let findings = analyze_at("crates/demo/src/lib.rs", fixture("s001", "ok.rs"));
    assert_eq!(
        lines(&findings, Rule::S001),
        Vec::<u32>::new(),
        "{findings:?}"
    );
}

#[test]
fn s001_ok_documented_unsafe() {
    let findings = analyze_at("crates/demo/src/lib.rs", fixture("s001", "ok_safety.rs"));
    assert_eq!(
        lines(&findings, Rule::S001),
        Vec::<u32>::new(),
        "SAFETY comments within reach; forbid not required when unsafe \
         exists: {findings:?}"
    );
}

#[test]
fn s001_bin_target_needs_its_own_forbid() {
    // A lib root's attribute does not cover sibling binaries: the same
    // clean text passes as an annotated lib root but fails as a bin.
    let text = fixture("s001", "trigger_missing_forbid.rs");
    let findings = analyze_at("crates/demo/src/bin/tool.rs", text);
    assert_eq!(lines(&findings, Rule::S001), vec![1], "{findings:?}");
}
