// D002 suppression fixture.
use rand::thread_rng;

fn excused() -> u64 {
    let mut rng = thread_rng(); // lint:allow(D002, reason = "fixture demonstrating suppression")
    rng.next_u64()
}
