// D002 negative fixture: seeded streams, an unrelated `random`
// identifier, and banned names appearing only in strings/comments.
use rand::{Rng, SeedableRng, StdRng};

fn seeded_draw(master_seed: u64, stream: u64) -> f64 {
    // Deterministic per-work-item stream split — the sanctioned path.
    let mut rng = StdRng::seed_from_stream(master_seed, stream);
    rng.random_range(0.0..1.0)
}

fn unrelated_names(random: f64) -> f64 {
    // `thread_rng` in a comment and a string must not trigger.
    let label = "do not call thread_rng here";
    random + label.len() as f64
}
