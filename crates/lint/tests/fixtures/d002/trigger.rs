// D002 positive fixture: the three ambient-entropy constructs.
use rand::{thread_rng, Rng, SeedableRng, StdRng};

fn ambient_draws() -> (f64, f64, u64) {
    let mut rng = thread_rng(); // line 5: thread_rng
    let a: f64 = rng.random_range(0.0..1.0);
    let b: f64 = rand::random(); // line 7: rand::random
    let mut seeded = StdRng::from_entropy(); // line 8: from_entropy
    (a, b, seeded.next_u64())
}
