// D003 negative fixture: timing is fine when the receiving field is a
// documented `// lint: timing` channel excluded from PartialEq, or
// when the struct is not compared at all.
use std::time::Instant;

pub struct AnnotatedReport {
    pub items: usize,
    /// Wall time, excluded from the manual PartialEq below.
    pub wall_ms: f64, // lint: timing
}

impl PartialEq for AnnotatedReport {
    fn eq(&self, other: &Self) -> bool {
        self.items == other.items
        // wall_ms is a run condition, not a result.
    }
}

pub struct BenchRow {
    pub name: &'static str,
    pub wall_secs: f64,
}

fn annotated_timing(items: usize) -> AnnotatedReport {
    let t0 = Instant::now();
    AnnotatedReport {
        items,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

fn uncompared_struct(name: &'static str) -> BenchRow {
    let t0 = Instant::now();
    BenchRow {
        name,
        wall_secs: t0.elapsed().as_secs_f64(),
    }
}
