// D003 suppression fixture.
use std::time::Instant;

#[derive(PartialEq)]
pub struct Snapshot {
    pub count: usize,
    pub at_ms: f64,
}

fn excused(count: usize) -> Snapshot {
    let t0 = Instant::now();
    Snapshot {
        count,
        // lint:allow(D003, reason = "fixture demonstrating suppression")
        at_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}
