// D003 positive fixture: wall-clock timing flowing into fields of a
// PartialEq-compared report through three shapes — direct literal
// entry, shorthand via a tainted local, and a field store.
use std::time::Instant;

#[derive(Debug, Clone, PartialEq)]
pub struct PhaseReport {
    pub items: usize,
    pub wall_ms: f64,
    pub spent_ms: f64,
}

fn direct_literal(items: usize) -> PhaseReport {
    let t0 = Instant::now();
    PhaseReport {
        items,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3, // line 17: literal entry
        spent_ms: 0.0,
    }
}

fn shorthand_and_store(items: usize) -> PhaseReport {
    let t0 = Instant::now();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut report = PhaseReport {
        items,
        wall_ms, // line 27: shorthand of a tainted local
        spent_ms: 0.0,
    };
    report.spent_ms = t0.elapsed().as_secs_f64() * 1e3; // line 30: field store
    report
}
