//! S001 positive fixture (forbid half): a crate root with zero unsafe
//! anywhere and no `#![forbid(unsafe_code)]` declaration.

pub fn entirely_safe(x: u64) -> u64 {
    x.wrapping_mul(31).rotate_left(7)
}
