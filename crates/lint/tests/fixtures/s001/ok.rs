//! S001 negative fixture: a crate root that declares the forbid (its
//! sources are unsafe-free), shown with a well-documented unsafe block
//! in a *separate* sibling fixture.

#![forbid(unsafe_code)]

pub fn safe_and_declared(x: u64) -> u64 {
    x ^ 0x9e37_79b9_7f4a_7c15
}
