// S001 negative fixture (comment half): every unsafe block carries a
// SAFETY justification within reach.
fn read_first(xs: &[u64]) -> u64 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees at least one element, so the
    // pointer read is in bounds.
    unsafe { *xs.as_ptr() }
}

fn trailing_form(xs: &[u64]) -> u64 {
    assert!(!xs.is_empty());
    unsafe { *xs.as_ptr() } // SAFETY: non-empty asserted above
}
