// S001 positive fixture (comment half): an unsafe block with no
// SAFETY justification anywhere near it.
fn read_first(xs: &[u64]) -> u64 {
    unsafe { *xs.as_ptr() } // line 4: undocumented unsafe
}
