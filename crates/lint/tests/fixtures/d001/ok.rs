// D001 negative fixture: hash containers used as pure lookup tables,
// ordered containers iterated freely, and an untracked Vec whose
// methods share names with map iteration.
use std::collections::{BTreeMap, HashMap, HashSet};

struct Cache {
    by_id: HashMap<u32, f64>,
}

fn lookups_are_fine(keys: &[u32]) -> f64 {
    let mut table: HashMap<u32, f64> = HashMap::new();
    for (i, k) in keys.iter().enumerate() {
        table.insert(*k, i as f64);
    }
    let mut seen: HashSet<u32> = HashSet::new();
    seen.insert(7);
    keys.iter()
        .filter(|k| seen.contains(k))
        .map(|k| table.get(k).copied().unwrap_or(0.0))
        .sum()
}

fn ordered_iteration_is_fine(rows: &[(u32, f64)]) -> Vec<(u32, f64)> {
    let mut by_key: BTreeMap<u32, f64> = BTreeMap::new();
    for (k, v) in rows {
        *by_key.entry(*k).or_insert(0.0) += *v;
    }
    by_key.into_iter().collect()
}

impl Cache {
    fn get(&self, id: u32) -> Option<f64> {
        self.by_id.get(&id).copied()
    }
}
