// D001 positive fixture: four distinct iteration shapes over hash
// containers. Loaded under a report-affecting path by the test driver;
// never compiled.
use std::collections::{HashMap, HashSet};

struct Index {
    by_worker: HashMap<u32, usize>,
}

fn venue_totals(pairs: &[(u32, f64)]) -> Vec<(u32, f64)> {
    let mut by_venue: HashMap<u32, f64> = HashMap::new();
    for (v, x) in pairs {
        *by_venue.entry(*v).or_insert(0.0) += *x;
    }
    by_venue.into_iter().collect() // line 15: .into_iter()
}

fn max_count(seen: &[u32]) -> usize {
    let mut counts = HashMap::new();
    for s in seen {
        *counts.entry(*s).or_insert(0usize) += 1;
    }
    counts.values().copied().max().unwrap_or(0) // line 23: .values()
}

fn drain_all(mut live: HashSet<u64>) -> Vec<u64> {
    let mut out = Vec::new();
    for id in &live {
        // line 28: for … in &set
        out.push(*id);
    }
    live.drain().collect() // line 32: .drain()
}

impl Index {
    fn report(&self) -> Vec<(u32, usize)> {
        let mut rows = Vec::new();
        for (w, i) in &self.by_worker {
            // line 38: for … in &self.field
            rows.push((*w, *i));
        }
        rows
    }
}
