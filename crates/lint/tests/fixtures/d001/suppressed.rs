// D001 suppression fixture: the same iteration shape as trigger.rs,
// excused with a documented reason (the result is sorted immediately).
use std::collections::HashMap;

fn sorted_totals(pairs: &[(u32, f64)]) -> Vec<(u32, f64)> {
    let mut by_venue: HashMap<u32, f64> = HashMap::new();
    for (v, x) in pairs {
        *by_venue.entry(*v).or_insert(0.0) += *x;
    }
    // lint:allow(D001, reason = "collected then sorted by key on the next line")
    let mut rows: Vec<(u32, f64)> = by_venue.into_iter().collect();
    rows.sort_by_key(|(k, _)| *k);
    rows
}
