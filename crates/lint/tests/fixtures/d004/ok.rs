// D004 negative fixture: the sanctioned path — budgeted, contiguous,
// deterministic-merge fork-join through the shared scheduler.
fn scheduled_parallel_sum(xs: &[f64], threads: usize) -> f64 {
    sc_stats::par::map_shards(xs.len(), threads, |lo, hi| {
        xs[lo..hi].iter().sum::<f64>()
    })
    .into_iter()
    .sum()
}

fn chunked(xs: &[f64], threads: usize) -> Vec<f64> {
    // `thread::scope` in this comment must not trigger.
    sc_stats::par::map_chunked(xs.len(), threads, |i| xs[i] * 2.0)
}
