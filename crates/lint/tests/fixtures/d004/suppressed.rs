// D004 suppression fixture: mirrors the one sanctioned call site in
// `sc_stats::par` itself.
pub fn scheduler_core<R: Send, F: Fn(usize, usize) -> R + Sync>(
    bounds: &[(usize, usize)],
    f: F,
) -> Vec<R> {
    // lint:allow(D004, reason = "this is the scheduler primitive itself")
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(lo, hi)| scope.spawn(|| f(lo, hi)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}
