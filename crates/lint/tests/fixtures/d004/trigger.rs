// D004 positive fixture: ad-hoc scoped-thread accumulation — one
// thread per item, join-order float summation.
fn adhoc_parallel_sum(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    std::thread::scope(|scope| {
        // line 5: std::thread::scope
        let handles: Vec<_> = xs.iter().map(|x| scope.spawn(move || *x * 2.0)).collect();
        for h in handles {
            total += h.join().unwrap();
        }
    });
    total
}

fn imported_form(xs: &[f64]) -> f64 {
    use std::thread;
    let mut total = 0.0;
    thread::scope(|s| {
        // line 18: thread::scope (imported)
        for x in xs {
            let h = s.spawn(move || *x);
            total += h.join().unwrap();
        }
    });
    total
}
