//! Findings, suppression, and the analysis driver.
//!
//! The engine lexes every file once, builds the cross-file
//! [`Registry`] (struct shapes, `PartialEq` knowledge, `// lint: timing`
//! annotations), runs each rule, and then
//! applies inline suppressions:
//!
//! ```text
//! // lint:allow(D001, reason = "keys are sorted two lines down")
//! for (k, v) in &map { … }
//! ```
//!
//! An allow comment suppresses the named rules on its own line and on
//! the line immediately below it — enough for both trailing and
//! stand-alone placement. The `reason = "…"` clause is **mandatory**:
//! an allow without a non-empty reason is ignored (the finding stays),
//! so every suppression in the tree documents why it is sound.

use crate::context::Registry;
use crate::lexer::{lex, Token, TokenKind};
use crate::rules;
use std::collections::BTreeMap;
use std::fmt;

/// A lint rule identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// `HashMap`/`HashSet` iteration in report-affecting crates.
    D001,
    /// Ambient entropy (`thread_rng`, `rand::random`, `from_entropy`).
    D002,
    /// Wall-clock timing flowing into a `PartialEq`-compared field.
    D003,
    /// Ad-hoc `std::thread::scope` parallelism outside `sc_stats::par`.
    D004,
    /// `unsafe` hygiene: `// SAFETY:` comments and `#![forbid(unsafe_code)]`.
    S001,
}

impl Rule {
    /// All rules, in report order.
    pub const ALL: [Rule; 5] = [Rule::D001, Rule::D002, Rule::D003, Rule::D004, Rule::S001];

    /// The rule's stable identifier (`D001`, …).
    pub fn id(self) -> &'static str {
        match self {
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::S001 => "S001",
        }
    }

    /// One-line description, used by `sc-lint rules` and the README table.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D001 => {
                "no HashMap/HashSet iteration in report-affecting crates \
                 (sc-assign, sc-core, sc-influence, sc-sim, sc-datagen); \
                 use BTreeMap or an explicit sort"
            }
            Rule::D002 => {
                "no ambient entropy (thread_rng, rand::random, from_entropy); \
                 RNG must flow from seed_from_stream"
            }
            Rule::D003 => {
                "no Instant::now/SystemTime::now feeding a PartialEq-compared \
                 field; timing fields must be excluded from PartialEq and \
                 annotated `// lint: timing`"
            }
            Rule::D004 => {
                "parallel work must go through sc_stats::par (map_shards/\
                 map_chunked), not ad-hoc std::thread::scope"
            }
            Rule::S001 => {
                "every unsafe block carries a // SAFETY: comment; every crate \
                 with zero unsafe declares #![forbid(unsafe_code)]"
            }
        }
    }

    fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One source file handed to the engine: a workspace-relative path
/// (forward slashes) plus its full text.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path, e.g. `crates/assign/src/lib.rs`.
    pub path: String,
    /// The file's contents.
    pub text: String,
}

/// A lexed file as rules see it.
#[derive(Debug)]
pub struct LexedFile {
    /// Workspace-relative path.
    pub path: String,
    /// Comment-free token stream (what rules match on).
    pub code: Vec<Token>,
    /// Comment tokens only, for `// SAFETY:` / `// lint:` lookups.
    pub comments: Vec<Token>,
}

impl LexedFile {
    fn new(file: &SourceFile) -> LexedFile {
        let tokens = lex(&file.text);
        let (comments, code): (Vec<Token>, Vec<Token>) = tokens
            .into_iter()
            .partition(|t| t.kind == TokenKind::Comment);
        LexedFile {
            path: file.path.clone(),
            code,
            comments,
        }
    }

    /// True when some comment on `line` (or a block comment starting
    /// there) contains `needle`.
    pub fn comment_on_line_contains(&self, line: u32, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.line == line && c.text.contains(needle))
    }
}

/// A single rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation, specific to the site.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} {} {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Parsed `// lint:allow(...)` comments of one file: rule → lines the
/// allow covers. A trailing allow (code before it on the same line)
/// covers exactly that line; a stand-alone allow covers the line
/// below it.
#[derive(Debug, Default)]
pub struct Allows {
    by_rule: BTreeMap<Rule, Vec<u32>>,
}

impl Allows {
    fn parse(file: &LexedFile) -> Allows {
        let mut allows = Allows::default();
        for c in &file.comments {
            let Some(start) = c.text.find("lint:allow(") else {
                continue;
            };
            let trailing = file.code.iter().any(|t| t.line == c.line);
            let covered_line = if trailing { c.line } else { c.line + 1 };
            let args = &c.text[start + "lint:allow(".len()..];
            let Some(end) = args.find(')') else { continue };
            let args = &args[..end];
            // The reason clause is mandatory and must be non-empty.
            let Some(reason_at) = args.find("reason") else {
                continue;
            };
            let reason = args[reason_at..]
                .split('"')
                .nth(1)
                .unwrap_or("")
                .trim()
                .to_string();
            if reason.is_empty() {
                continue;
            }
            for part in args[..reason_at].split(',') {
                if let Some(rule) = Rule::from_id(part.trim()) {
                    allows.by_rule.entry(rule).or_default().push(covered_line);
                }
            }
        }
        allows
    }

    /// Is `rule` allowed at `line`?
    pub fn covers(&self, rule: Rule, line: u32) -> bool {
        self.by_rule
            .get(&rule)
            .is_some_and(|lines| lines.contains(&line))
    }
}

/// Runs every rule over `files` and returns the surviving findings,
/// sorted by (file, line, rule).
///
/// `files` is the whole walked workspace: cross-file context (struct
/// registry for D003, per-crate grouping for S001) is built from the
/// same set, so callers can analyze a real checkout, a fixture
/// directory, or an in-memory synthetic tree identically.
pub fn analyze(files: &[SourceFile]) -> Vec<Finding> {
    let lexed: Vec<LexedFile> = files.iter().map(LexedFile::new).collect();
    let registry = Registry::build(&lexed);

    let mut findings = Vec::new();
    for file in &lexed {
        rules::d001::check(file, &mut findings);
        rules::d002::check(file, &mut findings);
        rules::d003::check(file, &registry, &mut findings);
        rules::d004::check(file, &mut findings);
        rules::s001::check_unsafe_comments(file, &mut findings);
    }
    rules::s001::check_forbid(&lexed, &mut findings);

    let allows: BTreeMap<&str, Allows> = lexed
        .iter()
        .map(|f| (f.path.as_str(), Allows::parse(f)))
        .collect();
    findings.retain(|f| {
        allows
            .get(f.file.as_str())
            .is_none_or(|a| !a.covers(f.rule, f.line))
    });
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    findings
}

/// Renders findings as the plain `file:line RULE message` report.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&f.to_string());
        out.push('\n');
    }
    out
}

/// Renders findings as a JSON array (machine-readable `--json` mode).
pub fn render_json(findings: &[Finding]) -> String {
    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            escape(&f.file),
            f.line,
            f.rule,
            escape(&f.message)
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, text: &str) -> SourceFile {
        SourceFile {
            path: path.to_string(),
            text: text.to_string(),
        }
    }

    #[test]
    fn allow_with_reason_suppresses_same_and_next_line() {
        let src = "\
#![forbid(unsafe_code)]
fn f() {
    // lint:allow(D002, reason = \"fixture\")
    let r = thread_rng();
    let s = thread_rng(); // lint:allow(D002, reason = \"fixture\")
    let t = thread_rng();
}
";
        let findings = analyze(&[file("crates/demo/src/lib.rs", src)]);
        let d002: Vec<u32> = findings
            .iter()
            .filter(|f| f.rule == Rule::D002)
            .map(|f| f.line)
            .collect();
        assert_eq!(d002, vec![6], "only the unannotated call survives");
    }

    #[test]
    fn allow_without_reason_is_ignored() {
        let src = "\
#![forbid(unsafe_code)]
// lint:allow(D002)
fn f() -> u64 { thread_rng() }
";
        let findings = analyze(&[file("crates/demo/src/lib.rs", src)]);
        assert!(
            findings.iter().any(|f| f.rule == Rule::D002),
            "reason-less allow must not suppress: {findings:?}"
        );
    }

    #[test]
    fn json_output_escapes_and_shapes() {
        let findings = vec![Finding {
            file: "a.rs".into(),
            line: 3,
            rule: Rule::D001,
            message: "say \"hi\"".into(),
        }];
        let json = render_json(&findings);
        assert_eq!(
            json,
            "[{\"file\":\"a.rs\",\"line\":3,\"rule\":\"D001\",\"message\":\"say \\\"hi\\\"\"}]\n"
        );
    }

    #[test]
    fn findings_are_sorted_and_text_rendered() {
        let src_b = "#![forbid(unsafe_code)]\nfn f() -> u64 { thread_rng() }\n";
        let src_a = "#![forbid(unsafe_code)]\nfn g() -> u64 { thread_rng() }\n";
        let findings = analyze(&[
            file("crates/b/src/lib.rs", src_b),
            file("crates/a/src/lib.rs", src_a),
        ]);
        assert_eq!(findings.len(), 2);
        assert!(findings[0].file < findings[1].file, "sorted by path");
        assert!(render_text(&findings).contains("crates/a/src/lib.rs:2 D002"));
    }
}
