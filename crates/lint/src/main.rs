//! `sc-lint` CLI: `check` (analyze the workspace) and `rules` (table).

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]

use sc_lint::{analyze, load_workspace, render_json, render_text, Rule};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
sc-lint — workspace determinism & safety static analysis

USAGE:
    sc-lint check [--root DIR] [--json]
    sc-lint rules

COMMANDS:
    check    Walk <root>/src and <root>/crates/*/src, run rules
             D001-D004 and S001, print findings as
             `file:line RULE message` (exit 1 when any survive)
    rules    Print the rule table

OPTIONS:
    --root DIR    Workspace root to analyze (default: .)
    --json        Emit findings as a JSON array instead of text
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            for rule in Rule::ALL {
                println!("{}  {}", rule.id(), rule.summary());
            }
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("sc-lint: unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("sc-lint: --root needs a directory\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("sc-lint: unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let files = match load_workspace(&root) {
        Ok(files) => files,
        Err(err) => {
            eprintln!("sc-lint: cannot walk {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };
    if files.is_empty() {
        eprintln!(
            "sc-lint: no Rust sources under {} (expected src/ or crates/*/src/)",
            root.display()
        );
        return ExitCode::from(2);
    }

    let findings = analyze(&files);
    if json {
        print!("{}", render_json(&findings));
    } else {
        print!("{}", render_text(&findings));
        if findings.is_empty() {
            println!("sc-lint: {} files clean", files.len());
        } else {
            println!(
                "sc-lint: {} finding(s) in {} files",
                findings.len(),
                files.len()
            );
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
