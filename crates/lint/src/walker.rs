//! Workspace file discovery.
//!
//! `sc-lint check` walks exactly the surfaces the determinism contract
//! covers: the umbrella crate's `src/` and every `crates/*/src/`.
//! Vendored shims (`vendor/`), integration tests, examples, benches
//! and fixture snippets are deliberately out of scope — the contract
//! binds the library code that produces reports, and fixtures *must*
//! be able to contain violations.
//!
//! The walk is fully deterministic: directory entries are visited in
//! sorted order and paths are normalized to forward slashes, so the
//! findings report is byte-stable across machines (the tool holds
//! itself to the contract it enforces).

use crate::engine::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Loads every `.rs` file under `<root>/src` and `<root>/crates/*/src`,
/// returning workspace-relative [`SourceFile`]s in sorted path order.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut dirs: Vec<PathBuf> = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        dirs.push(src);
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut names: Vec<PathBuf> = fs::read_dir(&crates)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        names.sort();
        for dir in names {
            let src = dir.join("src");
            if src.is_dir() {
                dirs.push(src);
            }
        }
    }

    let mut files = Vec::new();
    for dir in dirs {
        collect_rs(root, &dir, &mut files)?;
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn collect_rs(root: &Path, dir: &Path, files: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(root, &path, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile {
                path: rel,
                text: fs::read_to_string(&path)?,
            });
        }
    }
    Ok(())
}
