//! Cross-file context: the struct registry D003 matches against.
//!
//! A single pass over every lexed file records, for each named struct:
//!
//! * whether its values are compared by `PartialEq` — either through
//!   `#[derive(.., PartialEq, ..)]` or a manual `impl PartialEq for X`
//!   anywhere in the walked set (the workspace's
//!   "`PartialEq`-ignores-timings" structs use manual impls);
//! * its named fields, each with the declaration line and whether a
//!   `// lint: timing` annotation marks it as excluded from comparison.
//!
//! The registry is keyed by bare struct name. That is deliberately
//! coarse (no module paths), matching the lexer-level altitude of the
//! whole tool: a same-named struct in two crates merges conservatively
//! (`PartialEq` if any definition has it), which can only produce
//! findings a `// lint: timing` annotation or `lint:allow` resolves.

use crate::engine::LexedFile;
use crate::lexer::{Token, TokenKind};
use std::collections::BTreeMap;

/// One named field of a registered struct.
#[derive(Debug, Clone)]
pub struct FieldInfo {
    /// Line of the field's declaration.
    pub line: u32,
    /// True when `// lint: timing` annotates the declaration (same
    /// line or the line above), i.e. the field is a documented timing
    /// channel excluded from `PartialEq`.
    pub timing_ok: bool,
}

/// Everything D003 needs to know about one struct.
#[derive(Debug, Default, Clone)]
pub struct StructInfo {
    /// Compared by `PartialEq` (derived or manually implemented).
    pub partial_eq: bool,
    /// Named fields by name.
    pub fields: BTreeMap<String, FieldInfo>,
}

/// The cross-file struct registry.
#[derive(Debug, Default)]
pub struct Registry {
    /// Struct name → shape.
    pub structs: BTreeMap<String, StructInfo>,
}

impl Registry {
    /// Builds the registry from every walked file.
    pub fn build(files: &[LexedFile]) -> Registry {
        let mut reg = Registry::default();
        for file in files {
            scan_file(file, &mut reg);
        }
        reg
    }

    /// Does any `PartialEq` struct declare an un-annotated field with
    /// this name? Used for `x.field = <timing>` assignments, where the
    /// struct name is not syntactically visible.
    pub fn compared_field_lacks_timing(&self, field: &str) -> bool {
        self.structs
            .values()
            .any(|s| s.partial_eq && s.fields.get(field).is_some_and(|f| !f.timing_ok))
    }
}

/// Skips a balanced bracket group starting at `code[i]` (which must be
/// the opening token) and returns the index just past the matching
/// close. Tracks all three bracket kinds plus `<>` when asked.
pub fn skip_balanced(code: &[Token], i: usize) -> usize {
    let open = code[i].text.as_str();
    let close = match open {
        "(" => ")",
        "[" => "]",
        "{" => "}",
        "<" => ">",
        _ => return i + 1,
    };
    let mut depth = 0usize;
    let mut j = i;
    while j < code.len() {
        if code[j].is_punct(open) {
            depth += 1;
        } else if code[j].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    code.len()
}

fn scan_file(file: &LexedFile, reg: &mut Registry) {
    let code = &file.code;
    let mut i = 0;
    while i < code.len() {
        let t = &code[i];
        if t.is_ident("struct") {
            i = scan_struct(file, i, reg);
            continue;
        }
        if t.is_ident("impl") {
            // `impl PartialEq for X`, possibly `impl<..> PartialEq<..> for X`.
            let mut j = i + 1;
            if j < code.len() && code[j].is_punct("<") {
                j = skip_balanced(code, j);
            }
            if j < code.len() && code[j].is_ident("PartialEq") {
                let mut k = j + 1;
                if k < code.len() && code[k].is_punct("<") {
                    k = skip_balanced(code, k);
                }
                if k + 1 < code.len()
                    && code[k].is_ident("for")
                    && code[k + 1].kind == TokenKind::Ident
                {
                    reg.structs
                        .entry(code[k + 1].text.clone())
                        .or_default()
                        .partial_eq = true;
                }
            }
        }
        i += 1;
    }
}

/// Parses `struct Name …` at `code[i]` (the `struct` token): records
/// derives found in the attributes directly above, then the named
/// fields if the body is brace-delimited. Returns the index to resume
/// scanning from.
fn scan_struct(file: &LexedFile, i: usize, reg: &mut Registry) -> usize {
    let code = &file.code;
    let Some(name_tok) = code.get(i + 1) else {
        return i + 1;
    };
    if name_tok.kind != TokenKind::Ident {
        return i + 1;
    }
    let name = name_tok.text.clone();

    // Walk backwards over `pub` / `pub(..)` / `#[...]` groups looking
    // for a derive list naming PartialEq.
    let mut derives_partial_eq = false;
    let mut b = i;
    while b > 0 {
        let prev = &code[b - 1];
        if prev.is_ident("pub") {
            b -= 1;
        } else if prev.is_punct(")") || prev.is_punct("]") {
            // Rewind over the balanced group plus its introducer.
            let close = prev.text.as_str();
            let open = if close == ")" { "(" } else { "[" };
            let mut depth = 0usize;
            let mut j = b - 1;
            loop {
                if code[j].is_punct(close) {
                    depth += 1;
                } else if code[j].is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            if close == "]" {
                // `#[ ... ]`: check for `derive(...PartialEq...)`.
                let group = &code[j..b];
                let is_derive = group.iter().any(|t| t.is_ident("derive"));
                if is_derive && group.iter().any(|t| t.is_ident("PartialEq")) {
                    derives_partial_eq = true;
                }
                // Step over the `#` (and `!` for inner attrs).
                b = j;
                while b > 0 && (code[b - 1].is_punct("#") || code[b - 1].is_punct("!")) {
                    b -= 1;
                }
            } else {
                b = j;
            }
        } else {
            break;
        }
    }

    let entry = reg.structs.entry(name).or_default();
    if derives_partial_eq {
        entry.partial_eq = true;
    }

    // Skip generics, then find the body. `;` → unit, `(` → tuple
    // (no named fields to record).
    let mut j = i + 2;
    if j < code.len() && code[j].is_punct("<") {
        j = skip_balanced(code, j);
    }
    // `struct X where ...;` — scan forward to the first of `{`, `(`, `;`.
    while j < code.len()
        && !code[j].is_punct("{")
        && !code[j].is_punct("(")
        && !code[j].is_punct(";")
    {
        j += 1;
    }
    if j >= code.len() || !code[j].is_punct("{") {
        return j;
    }

    // Named fields: entries at depth 1 of the body, separated by `,`.
    let body_end = skip_balanced(code, j);
    let mut k = j + 1;
    while k < body_end - 1 {
        // Skip field attributes and visibility.
        while k < body_end - 1 && code[k].is_punct("#") {
            k += 1; // `#`
            if k < body_end - 1 && code[k].is_punct("[") {
                k = skip_balanced(code, k);
            }
        }
        if k < body_end - 1 && code[k].is_ident("pub") {
            k += 1;
            if k < body_end - 1 && code[k].is_punct("(") {
                k = skip_balanced(code, k);
            }
        }
        // Field name + `:`.
        if k + 1 < body_end - 1 && code[k].kind == TokenKind::Ident && code[k + 1].is_punct(":") {
            let fline = code[k].line;
            let timing_ok = file.comment_on_line_contains(fline, "lint: timing")
                || (fline > 1 && file.comment_on_line_contains(fline - 1, "lint: timing"));
            entry.fields.insert(
                code[k].text.clone(),
                FieldInfo {
                    line: fline,
                    timing_ok,
                },
            );
            k += 2;
        }
        // Advance to the `,` that ends this field (skipping nested
        // groups — generic types carry commas of their own).
        while k < body_end - 1 {
            if code[k].is_punct("(")
                || code[k].is_punct("[")
                || code[k].is_punct("{")
                || code[k].is_punct("<")
            {
                k = skip_balanced(code, k);
            } else if code[k].is_punct(",") {
                k += 1;
                break;
            } else {
                k += 1;
            }
        }
    }
    body_end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SourceFile;

    fn lexed(path: &str, text: &str) -> LexedFile {
        let sf = SourceFile {
            path: path.to_string(),
            text: text.to_string(),
        };
        // Reuse the engine's constructor via analyze-time path: build
        // directly here to keep the test self-contained.
        let tokens = crate::lexer::lex(&sf.text);
        let (comments, code): (Vec<Token>, Vec<Token>) = tokens
            .into_iter()
            .partition(|t| t.kind == TokenKind::Comment);
        LexedFile {
            path: sf.path,
            code,
            comments,
        }
    }

    #[test]
    fn derived_partial_eq_and_fields_are_registered() {
        let f = lexed(
            "crates/x/src/lib.rs",
            "#[derive(Debug, Clone, PartialEq)]\n\
             pub struct Report {\n\
                 pub round: u64,\n\
                 pub wall_ms: f64, // lint: timing\n\
                 pub map: std::collections::BTreeMap<u32, Vec<u64>>,\n\
             }\n",
        );
        let reg = Registry::build(std::slice::from_ref(&f));
        let info = &reg.structs["Report"];
        assert!(info.partial_eq);
        assert_eq!(info.fields.len(), 3, "{:?}", info.fields);
        assert!(!info.fields["round"].timing_ok);
        assert!(info.fields["wall_ms"].timing_ok);
        assert!(reg.compared_field_lacks_timing("round"));
        assert!(!reg.compared_field_lacks_timing("wall_ms"));
    }

    #[test]
    fn manual_impl_marks_partial_eq_across_files() {
        let def = lexed(
            "crates/x/src/a.rs",
            "pub struct Stats { pub n: usize, pub ms: f64 }\n",
        );
        let imp = lexed(
            "crates/x/src/b.rs",
            "impl PartialEq for Stats { fn eq(&self, o: &Self) -> bool { self.n == o.n } }\n",
        );
        let reg = Registry::build(&[def, imp]);
        assert!(reg.structs["Stats"].partial_eq);
        assert!(reg.compared_field_lacks_timing("ms"));
    }

    #[test]
    fn annotation_on_previous_line_counts() {
        let f = lexed(
            "crates/x/src/lib.rs",
            "#[derive(PartialEq)]\n\
             struct T {\n\
                 // lint: timing\n\
                 elapsed_ms: f64,\n\
             }\n",
        );
        let reg = Registry::build(std::slice::from_ref(&f));
        assert!(reg.structs["T"].fields["elapsed_ms"].timing_ok);
    }

    #[test]
    fn tuple_and_unit_structs_do_not_confuse_the_parser() {
        let f = lexed(
            "crates/x/src/lib.rs",
            "struct Unit;\nstruct Tup(u32, f64);\n#[derive(PartialEq)]\nstruct N { x: u8 }\n",
        );
        let reg = Registry::build(std::slice::from_ref(&f));
        assert!(reg.structs["Tup"].fields.is_empty());
        assert!(reg.structs["N"].partial_eq);
        assert_eq!(reg.structs["N"].fields.len(), 1);
    }
}
