//! # sc-lint — workspace determinism & safety static analysis
//!
//! The workspace's core guarantee is that assignment reports are
//! **bit-identical at any thread or shard count**. Runtime determinism
//! suites can only catch a nondeterminism source once it fires;
//! `sc-lint` rejects the *constructs* that produce such sources at CI
//! time, before they can reach a report:
//!
//! | rule | contract |
//! |------|----------|
//! | D001 | no `HashMap`/`HashSet` **iteration** in report-affecting crates (sc-assign, sc-core, sc-datagen, sc-graph, sc-influence, sc-serve, sc-sim, sc-topics) — use `BTreeMap`/`BTreeSet` or an explicit sort; hash *lookups* stay legal |
//! | D002 | no ambient entropy (`thread_rng`, `rand::random`, `from_entropy`) — RNG state must flow from the master seed via `seed_from_stream` |
//! | D003 | no `Instant::now`/`SystemTime::now` feeding a field compared by `PartialEq` — timing may only land in fields the manual `PartialEq`-ignores-timings impls exclude, marked `// lint: timing` |
//! | D004 | no ad-hoc `std::thread::scope` parallelism — every parallel phase routes through `sc_stats::par::{map_shards, map_chunked}` |
//! | S001 | every `unsafe` carries `// SAFETY:`; every unsafe-free crate declares `#![forbid(unsafe_code)]` |
//!
//! Findings print as `file:line RULE message` (or as JSON with
//! `--json`) and are suppressible inline:
//!
//! ```text
//! // lint:allow(D001, reason = "values are collected and sorted below")
//! ```
//!
//! The reason clause is mandatory — a reason-less allow is ignored.
//!
//! The tool is built the way the repo builds everything: offline. The
//! lexer ([`lexer`]) is hand-rolled (comments, raw strings, lifetimes
//! vs. char literals, nested block comments), rules do lightweight
//! scope tracking over the token stream, and there are zero external
//! dependencies. Run it as:
//!
//! ```text
//! cargo run -p sc-lint --release -- check
//! cargo run -p sc-lint --release -- check --json
//! cargo run -p sc-lint --release -- rules
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]

pub mod context;
pub mod engine;
pub mod lexer;
mod rules;
pub mod walker;

pub use engine::{analyze, render_json, render_text, Finding, Rule, SourceFile};
pub use walker::load_workspace;
