//! D004 — parallel work must route through `sc_stats::par`.
//!
//! The workspace has exactly one parallelism primitive:
//! `sc_stats::par::{map_shards, map_chunked}` — budgeted, contiguous,
//! deterministic-merge fork-join. Ad-hoc `std::thread::scope`
//! accumulation was the historical source of oversubscription (one
//! thread per item) and of float reductions whose result depended on
//! join order; both classes are structurally impossible through the
//! shared scheduler. The scheduler's own `thread::scope` call site is
//! the single sanctioned exception, suppressed inline with a
//! `lint:allow` whose reason names it.

use crate::engine::{Finding, LexedFile, Rule};

/// Runs D004 over one file.
pub fn check(file: &LexedFile, findings: &mut Vec<Finding>) {
    let code = &file.code;
    for (i, t) in code.iter().enumerate() {
        if t.is_ident("scope")
            && i >= 2
            && code[i - 1].is_punct("::")
            && code[i - 2].is_ident("thread")
        {
            findings.push(Finding {
                file: file.path.clone(),
                line: t.line,
                rule: Rule::D004,
                message: "ad-hoc `thread::scope` parallelism; route the phase \
                          through `sc_stats::par::{map_shards, map_chunked}` \
                          so it honors the thread budget and merges \
                          deterministically"
                    .to_string(),
            });
        }
    }
}
