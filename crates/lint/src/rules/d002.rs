//! D002 — no ambient entropy.
//!
//! Every random draw in the workspace must flow from the master seed
//! through `seed_from_stream` (the per-work-item stream split that
//! makes parallel sampling bit-identical to sequential). Constructors
//! that pull entropy from the environment — `thread_rng()`,
//! `rand::random()`, `SeedableRng::from_entropy()` — would silently
//! break replayability, so they are banned everywhere the walker looks
//! (the vendored `rand` shim itself lives under `vendor/` and is not
//! walked).

use crate::engine::{Finding, LexedFile, Rule};
use crate::lexer::TokenKind;

/// Runs D002 over one file.
pub fn check(file: &LexedFile, findings: &mut Vec<Finding>) {
    let code = &file.code;
    let mut i = 0;
    while i < code.len() {
        // The violation is the *draw*, not the import: skip `use` items
        // so `use rand::thread_rng;` doesn't double-report the call site.
        if code[i].is_ident("use") {
            while i < code.len() && !code[i].is_punct(";") {
                i += 1;
            }
            continue;
        }
        let t = &code[i];
        if t.kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let banned = match t.text.as_str() {
            "thread_rng" | "from_entropy" => true,
            // Bare `random` is a common identifier; only the
            // `rand::random` path form is ambient entropy.
            "random" => i >= 2 && code[i - 1].is_punct("::") && code[i - 2].is_ident("rand"),
            _ => false,
        };
        if banned {
            findings.push(Finding {
                file: file.path.clone(),
                line: t.line,
                rule: Rule::D002,
                message: format!(
                    "`{}` draws ambient entropy; derive RNG state from the \
                     master seed via `seed_from_stream` instead",
                    t.text
                ),
            });
        }
        i += 1;
    }
}
