//! S001 — `unsafe` hygiene.
//!
//! Two complementary obligations:
//!
//! 1. every `unsafe` occurrence carries a `// SAFETY:` comment on the
//!    same line or within the three lines above it, and
//! 2. every crate whose sources contain **zero** `unsafe` declares
//!    `#![forbid(unsafe_code)]` in its root file, so the property is
//!    compiler-enforced from then on rather than merely observed.
//!
//! Crate roots are derived from the walked layout: `crates/<name>/src/`
//! groups to `lib.rs` (falling back to `main.rs`), the workspace root
//! `src/` likewise, and each `src/bin/<bin>.rs` is its own single-file
//! target that must carry the attribute itself (a lib root's attribute
//! does not cover its sibling binaries).

use crate::engine::{Finding, LexedFile, Rule};
use std::collections::BTreeMap;

/// Per-file check: `unsafe` without a nearby `// SAFETY:` comment.
pub fn check_unsafe_comments(file: &LexedFile, findings: &mut Vec<Finding>) {
    for t in &file.code {
        if !t.is_ident("unsafe") {
            continue;
        }
        let lo = t.line.saturating_sub(3);
        let documented = (lo..=t.line).any(|l| file.comment_on_line_contains(l, "SAFETY:"));
        if !documented {
            findings.push(Finding {
                file: file.path.clone(),
                line: t.line,
                rule: Rule::S001,
                message: "`unsafe` without a `// SAFETY:` comment justifying \
                          the invariants (same line or up to 3 lines above)"
                    .to_string(),
            });
        }
    }
}

/// Workspace-level check: unsafe-free targets must `#![forbid(unsafe_code)]`.
pub fn check_forbid(files: &[LexedFile], findings: &mut Vec<Finding>) {
    let mut lib_members: BTreeMap<String, Vec<&LexedFile>> = BTreeMap::new();
    for file in files {
        if is_bin_target(&file.path) {
            // Single-file binary target: the file is its own root.
            check_target(&[file], file, findings);
            continue;
        }
        if let Some(dir) = crate_dir(&file.path) {
            lib_members.entry(dir).or_default().push(file);
        }
    }
    for (dir, members) in &lib_members {
        let root = ["lib.rs", "main.rs"].iter().find_map(|r| {
            let want = format!("{dir}/{r}");
            members.iter().copied().find(|f| f.path == want)
        });
        if let Some(root) = root {
            check_target(members, root, findings);
        }
    }
}

/// `crates/<name>/src` or `src` for non-bin files; `None` for paths
/// outside a recognized layout.
fn crate_dir(path: &str) -> Option<String> {
    if path.contains("/bin/") {
        return None;
    }
    if let Some(rest) = path.strip_prefix("crates/") {
        let name = rest.split('/').next()?;
        if rest.starts_with(&format!("{name}/src/")) {
            return Some(format!("crates/{name}/src"));
        }
        return None;
    }
    path.strip_prefix("src/").map(|_| "src".to_string())
}

/// Is this file a stand-alone binary target (`…/src/bin/<name>.rs`)?
fn is_bin_target(path: &str) -> bool {
    path.rsplit_once('/')
        .is_some_and(|(dir, _)| dir.ends_with("src/bin"))
}

fn check_target(members: &[&LexedFile], root: &LexedFile, findings: &mut Vec<Finding>) {
    let any_unsafe = members
        .iter()
        .any(|f| f.code.iter().any(|t| t.is_ident("unsafe")));
    if any_unsafe {
        return; // forbid would not compile; SAFETY comments are checked per-file.
    }
    if !has_forbid_unsafe(root) {
        findings.push(Finding {
            file: root.path.clone(),
            line: 1,
            rule: Rule::S001,
            message: "target has no `unsafe` code but does not declare \
                      `#![forbid(unsafe_code)]`; add the attribute so the \
                      property is compiler-enforced"
                .to_string(),
        });
    }
}

/// Looks for the inner attribute token sequence
/// `# ! [ forbid ( … unsafe_code … ) ]`.
fn has_forbid_unsafe(file: &LexedFile) -> bool {
    let code = &file.code;
    for i in 0..code.len() {
        if code[i].is_punct("#")
            && code.get(i + 1).is_some_and(|t| t.is_punct("!"))
            && code.get(i + 2).is_some_and(|t| t.is_punct("["))
            && code.get(i + 3).is_some_and(|t| t.is_ident("forbid"))
        {
            let end = crate::context::skip_balanced(code, i + 2);
            if code[i..end].iter().any(|t| t.is_ident("unsafe_code")) {
                return true;
            }
        }
    }
    false
}
