//! The determinism & safety rules.
//!
//! Each rule is a function over one lexed file (plus the cross-file
//! [`Registry`](crate::context::Registry) where needed) that appends
//! [`Finding`](crate::engine::Finding)s. Rules work at token altitude:
//! they track just enough structure (brace depth, `let` bindings,
//! struct-literal bodies) to avoid lying, and prefer a false negative
//! over a false positive — the determinism suites remain the runtime
//! backstop; the lint is the cheap front line.

pub mod d001;
pub mod d002;
pub mod d003;
pub mod d004;
pub mod s001;

/// True when the file lives in a crate whose output feeds assignment
/// reports — the blast radius of order-nondeterminism (D001).
pub fn is_report_affecting(path: &str) -> bool {
    [
        "assign",
        "core",
        "datagen",
        "graph",
        "influence",
        "serve",
        "sim",
        "topics",
    ]
    .iter()
    .any(|c| path.starts_with(&format!("crates/{c}/src/")))
}
