//! D003 — wall-clock timing must not feed `PartialEq`-compared fields.
//!
//! The determinism suites assert *report equality* across thread
//! budgets; a wall-time measurement stored in a compared field would
//! make bit-identical runs compare unequal. The workspace's pattern is
//! to keep timing fields (e.g. `RpoStats::search_ms`,
//! `RoundReport::maintenance_ms`) **out** of the manual `PartialEq`
//! impl and mark the field declaration with `// lint: timing`; this
//! rule mechanizes the remaining direction — a timing value flowing
//! into any compared, un-annotated field is an error.
//!
//! Taint tracking is intra-function and lexical: locals bound (directly
//! or through tuple destructuring) to expressions containing
//! `Instant::now()`, `SystemTime::now()`, `.elapsed()`, or an already
//! tainted local are tainted; a tainted expression assigned into a
//! struct-literal field or a `x.field = …` store of a registered
//! `PartialEq` struct triggers the rule. Cross-function flows (a
//! helper *returning* elapsed time) are out of lexical reach — the
//! annotation requirement on the field plus the runtime suites cover
//! that residue, and the annotation documents the channel either way.

use crate::context::{skip_balanced, Registry};
use crate::engine::{Finding, LexedFile, Rule};
use crate::lexer::{Token, TokenKind};
use std::collections::BTreeSet;

/// Runs D003 over one file.
pub fn check(file: &LexedFile, registry: &Registry, findings: &mut Vec<Finding>) {
    let code = &file.code;
    let mut tainted: BTreeSet<String> = BTreeSet::new();

    let mut i = 0;
    while i < code.len() {
        let t = &code[i];

        // New function body: locals (and their taint) go out of scope.
        if t.is_ident("fn") {
            tainted.clear();
        }

        // `let [mut] NAME = expr;` and `let (A, B, C) = expr;`. The
        // initializer is NOT skipped: struct literals inside it (e.g.
        // `let stats = RpoStats { search_ms, … }`) must still be
        // scanned by the main loop below.
        if t.is_ident("let") {
            if let Some((names, init_lo, init_hi)) = let_binding(code, i) {
                if expr_tainted(code, init_lo, init_hi, &tainted) {
                    tainted.extend(names);
                }
                i = init_lo;
                continue;
            }
        }

        // Struct literal of a registered struct: `Name { field: expr, … }`.
        if t.kind == TokenKind::Ident
            && code.get(i + 1).is_some_and(|n| n.is_punct("{"))
            && registry.structs.contains_key(&t.text)
            && !literal_position_excluded(code, i)
        {
            let info = &registry.structs[&t.text];
            let end = skip_balanced(code, i + 1);
            if info.partial_eq {
                scan_literal_body(file, registry, &t.text, i + 2, end - 1, &tainted, findings);
            }
            // Fall through — nested literals inside the body are
            // reached by the outer linear scan.
        }

        // Field store: `recv.field = expr;` (also `+=` etc., which lex
        // as `op` `=`).
        if t.is_punct(".") && code.get(i + 1).is_some_and(|f| f.kind == TokenKind::Ident) {
            let mut j = i + 2;
            if code
                .get(j)
                .is_some_and(|o| matches!(o.text.as_str(), "+" | "-" | "*" | "/"))
            {
                j += 1;
            }
            if code.get(j).is_some_and(|e| e.is_punct("=")) {
                let field = &code[i + 1];
                let (lo, hi) = stmt_extent(code, j + 1);
                if expr_tainted(code, lo, hi, &tainted)
                    && registry.compared_field_lacks_timing(&field.text)
                {
                    findings.push(Finding {
                        file: file.path.clone(),
                        line: field.line,
                        rule: Rule::D003,
                        message: format!(
                            "wall-clock timing flows into compared field \
                             `{}`; exclude it from PartialEq and annotate \
                             the declaration with `// lint: timing`",
                            field.text
                        ),
                    });
                }
                i = hi;
                continue;
            }
        }

        i += 1;
    }
}

/// Parses a `let` statement at `code[i]`: returns the bound names
/// (simple ident or tuple of idents) plus the `[lo, hi)` token range
/// of the initializer expression. `None` for patterns the rule does
/// not model (struct patterns, `if let`, bindings without `=`).
fn let_binding(code: &[Token], i: usize) -> Option<(Vec<String>, usize, usize)> {
    let mut names = Vec::new();
    let mut j = i + 1;
    if code.get(j).is_some_and(|t| t.is_ident("mut")) {
        j += 1;
    }
    if code.get(j).is_some_and(|t| t.kind == TokenKind::Ident) {
        names.push(code[j].text.clone());
        j += 1;
    } else if code.get(j).is_some_and(|t| t.is_punct("(")) {
        let end = skip_balanced(code, j);
        for t in &code[j..end] {
            if t.kind == TokenKind::Ident && t.text != "mut" && t.text != "_" {
                names.push(t.text.clone());
            }
        }
        j = end;
    } else {
        return None;
    }
    // Optional type annotation: skip to the `=` at depth 0.
    let mut depth = 0i32;
    while j < code.len() {
        let t = &code[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct(">") {
            depth -= 1;
        } else if depth == 0 && t.is_punct("=") {
            let (lo, hi) = stmt_extent(code, j + 1);
            return Some((names, lo, hi));
        } else if depth == 0 && (t.is_punct(";") || t.is_punct("{")) {
            return None; // `let x;` or something unmodeled
        }
        j += 1;
    }
    None
}

/// The token range from `start` up to the `;` that ends the statement
/// (at bracket depth 0 relative to `start`).
fn stmt_extent(code: &[Token], start: usize) -> (usize, usize) {
    let mut depth = 0i32;
    let mut j = start;
    while j < code.len() {
        let t = &code[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
            if depth < 0 {
                break;
            }
        } else if depth == 0 && t.is_punct(";") {
            break;
        }
        j += 1;
    }
    (start, j)
}

/// Does `code[lo..hi]` contain a timing source or a tainted local?
fn expr_tainted(code: &[Token], lo: usize, hi: usize, tainted: &BTreeSet<String>) -> bool {
    let hi = hi.min(code.len());
    for k in lo..hi {
        let t = &code[k];
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "Instant" | "SystemTime"
                if code.get(k + 1).is_some_and(|p| p.is_punct("::"))
                    && code.get(k + 2).is_some_and(|n| n.is_ident("now")) =>
            {
                return true;
            }
            "elapsed" if k > lo && code[k - 1].is_punct(".") => return true,
            name if tainted.contains(name) => return true,
            _ => {}
        }
    }
    false
}

/// Identifier-followed-by-`{` positions that are *not* struct literals.
fn literal_position_excluded(code: &[Token], i: usize) -> bool {
    if i == 0 {
        return false;
    }
    matches!(
        code[i - 1].text.as_str(),
        "struct" | "fn" | "impl" | "enum" | "trait" | "union" | "mod" | "match" | "for" | "let"
    )
}

/// Scans a struct-literal body (`code[lo..hi]`, inside the braces) for
/// `field: tainted-expr` and shorthand `tainted_name` entries.
#[allow(clippy::too_many_arguments)]
fn scan_literal_body(
    file: &LexedFile,
    registry: &Registry,
    struct_name: &str,
    lo: usize,
    hi: usize,
    tainted: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    let code = &file.code;
    let info = &registry.structs[struct_name];
    let mut k = lo;
    while k < hi {
        let t = &code[k];
        // `..base` functional-update tail: nothing after it is a field.
        if t.is_punct("..") {
            break;
        }
        if t.kind == TokenKind::Ident && info.fields.contains_key(&t.text) {
            let field = &info.fields[&t.text];
            if code.get(k + 1).is_some_and(|c| c.is_punct(":")) {
                // `field: expr` — expr runs to the `,` at this depth.
                let (elo, ehi) = entry_extent(code, k + 2, hi);
                if expr_tainted(code, elo, ehi, tainted) && !field.timing_ok {
                    findings.push(literal_finding(
                        file,
                        code[k].line,
                        struct_name,
                        &code[k].text,
                    ));
                }
                k = ehi + 1;
                continue;
            }
            let ends_entry = code
                .get(k + 1)
                .is_none_or(|c| c.is_punct(",") || c.is_punct("}"));
            if ends_entry && tainted.contains(&t.text) && !field.timing_ok {
                // Shorthand `field,` with a tainted local of that name.
                findings.push(literal_finding(file, t.line, struct_name, &t.text));
            }
        }
        // Skip nested groups so inner commas don't desynchronize us.
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            k = skip_balanced(code, k);
        } else {
            k += 1;
        }
    }
}

/// The extent of one `field: expr` entry: up to the `,` at entry depth
/// or the end of the body.
fn entry_extent(code: &[Token], start: usize, body_hi: usize) -> (usize, usize) {
    let mut depth = 0i32;
    let mut j = start;
    while j < body_hi {
        let t = &code[j];
        if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        } else if depth == 0 && t.is_punct(",") {
            break;
        }
        j += 1;
    }
    (start, j)
}

fn literal_finding(file: &LexedFile, line: u32, struct_name: &str, field: &str) -> Finding {
    Finding {
        file: file.path.clone(),
        line,
        rule: Rule::D003,
        message: format!(
            "wall-clock timing flows into `{struct_name}.{field}`, which \
             PartialEq compares; exclude it from the impl and annotate the \
             field with `// lint: timing`"
        ),
    }
}
