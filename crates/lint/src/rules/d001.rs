//! D001 — no `HashMap`/`HashSet` iteration in report-affecting crates.
//!
//! Hash iteration order depends on the hasher's per-process state and
//! the insertion history, so any loop over a hash container can leak
//! nondeterminism into assignment reports. In sc-assign, sc-core,
//! sc-influence, sc-sim and sc-datagen (sc-core joined when the
//! persistent scorer cache made it report-affecting) the rule
//! requires `BTreeMap`/`BTreeSet` (or
//! an explicit sort, documented via `lint:allow`) wherever a map is
//! *iterated*; pure lookup tables (`get`/`insert`/`contains_key`)
//! remain free to use hashing.
//!
//! Detection is scope-light: the rule tracks identifiers bound to hash
//! containers — `let` bindings whose initializer or type annotation
//! mentions `HashMap`/`HashSet`, and struct fields typed so — then
//! flags iteration on those identifiers: `.iter()`, `.iter_mut()`,
//! `.keys()`, `.values()`, `.values_mut()`, `.into_iter()`,
//! `.into_keys()`, `.into_values()`, `.drain()`, and direct
//! `for … in [&[mut]] map` loops (both plain and `self.field` forms).

use crate::engine::{Finding, LexedFile, Rule};
use crate::lexer::TokenKind;
use crate::rules::is_report_affecting;
use std::collections::BTreeSet;

const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Runs D001 over one file.
pub fn check(file: &LexedFile, findings: &mut Vec<Finding>) {
    if !is_report_affecting(&file.path) {
        return;
    }
    let code = &file.code;

    // Pass 1: names bound to hash containers.
    let mut locals: BTreeSet<String> = BTreeSet::new();
    let mut fields: BTreeSet<String> = BTreeSet::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].is_ident("let") {
            // `let [mut] NAME (: TYPE)? = INIT ;` — NAME is tracked when
            // anything up to the terminating `;` names a hash container.
            // Destructuring patterns (`let Some(x) = …`) are skipped:
            // a tracked binding must be `NAME :` or `NAME =`.
            let mut j = i + 1;
            if j < code.len() && code[j].is_ident("mut") {
                j += 1;
            }
            if j + 1 < code.len()
                && code[j].kind == TokenKind::Ident
                && (code[j + 1].is_punct(":") || code[j + 1].is_punct("="))
            {
                let name = code[j].text.clone();
                let mut depth = 0i32;
                let mut k = j + 1;
                let mut is_hash = false;
                while k < code.len() {
                    let t = &code[k];
                    if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                        depth += 1;
                    } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                        depth -= 1;
                        if depth < 0 {
                            break;
                        }
                    } else if depth == 0 && t.is_punct(";") {
                        break;
                    } else if t.is_ident("HashMap") || t.is_ident("HashSet") {
                        is_hash = true;
                    }
                    k += 1;
                }
                if is_hash {
                    locals.insert(name);
                }
                i = j + 1;
                continue;
            }
        } else if code[i].is_ident("fn") {
            // Parameters typed `…HashMap…`/`…HashSet…` are tracked like
            // locals: `fn f(live: HashSet<u64>, n: usize)`.
            let mut j = i + 1;
            while j < code.len()
                && !code[j].is_punct("(")
                && !code[j].is_punct("{")
                && !code[j].is_punct(";")
            {
                j += 1;
            }
            if j < code.len() && code[j].is_punct("(") {
                let end = crate::context::skip_balanced(code, j);
                let mut k = j + 1;
                let mut pending: Option<String> = None;
                let mut depth = 0i32;
                while k < end - 1 {
                    let t = &code[k];
                    if t.is_punct("(") || t.is_punct("[") || t.is_punct("<") {
                        depth += 1;
                    } else if t.is_punct(")") || t.is_punct("]") || t.is_punct(">") {
                        depth -= 1;
                    } else if depth == 0
                        && t.kind == TokenKind::Ident
                        && k + 1 < end
                        && code[k + 1].is_punct(":")
                    {
                        pending = Some(t.text.clone());
                    } else if (t.is_ident("HashMap") || t.is_ident("HashSet")) && pending.is_some()
                    {
                        locals.insert(pending.clone().expect("pending param"));
                    } else if depth == 0 && t.is_punct(",") {
                        pending = None;
                    }
                    k += 1;
                }
                i = end;
                continue;
            }
        } else if code[i].is_ident("struct") {
            // Fields typed `…HashMap…` / `…HashSet…` become tracked for
            // `self.NAME` accesses. A shallow scan of the body suffices:
            // record `IDENT :` entries and whether a hash name appears
            // before the next top-level `,`.
            let mut j = i + 1;
            while j < code.len() && !code[j].is_punct("{") && !code[j].is_punct(";") {
                j += 1;
            }
            if j < code.len() && code[j].is_punct("{") {
                let end = crate::context::skip_balanced(code, j);
                let mut k = j + 1;
                let mut pending: Option<String> = None;
                let mut depth = 0i32;
                while k < end - 1 {
                    let t = &code[k];
                    if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") || t.is_punct("<") {
                        depth += 1;
                    } else if t.is_punct(")")
                        || t.is_punct("]")
                        || t.is_punct("}")
                        || t.is_punct(">")
                    {
                        depth -= 1;
                    } else if depth == 0
                        && t.kind == TokenKind::Ident
                        && k + 1 < end
                        && code[k + 1].is_punct(":")
                    {
                        pending = Some(t.text.clone());
                    } else if (t.is_ident("HashMap") || t.is_ident("HashSet")) && pending.is_some()
                    {
                        fields.insert(pending.clone().expect("pending field"));
                    } else if depth == 0 && t.is_punct(",") {
                        pending = None;
                    }
                    k += 1;
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }

    if locals.is_empty() && fields.is_empty() {
        return;
    }

    // Pass 2: iteration over tracked names.
    let mut i = 0;
    while i < code.len() {
        let t = &code[i];
        // `for … in [&[mut]] NAME {` / `for … in [&[mut]] self.NAME {`
        if t.is_ident("for") {
            if let Some((name, line, after)) = for_loop_target(file, i) {
                let tracked = match &name {
                    ForTarget::Local(n) => locals.contains(n),
                    ForTarget::Field(n) => fields.contains(n),
                };
                if tracked && code.get(after).is_some_and(|t| t.is_punct("{")) {
                    findings.push(finding(file, line, name.name()));
                    i = after;
                    continue;
                }
            }
        }
        // Method chains rooted at a tracked name.
        let (rooted, chain_start) = if t.kind == TokenKind::Ident && locals.contains(&t.text) {
            // Exclude definitions (`let NAME`) — pass 1 consumed those
            // positions oddly; a cheap guard: previous token not `let`/`mut`.
            let prev_ok = i == 0
                || !(code[i - 1].is_ident("let")
                    || code[i - 1].is_ident("mut")
                    || code[i - 1].is_punct("."));
            (prev_ok, i + 1)
        } else if t.is_ident("self")
            && code.get(i + 1).is_some_and(|t| t.is_punct("."))
            && code
                .get(i + 2)
                .is_some_and(|t| t.kind == TokenKind::Ident && fields.contains(&t.text))
        {
            (true, i + 3)
        } else {
            (false, 0)
        };
        if rooted {
            if let Some((line, method)) = chain_hits_iteration(file, chain_start) {
                findings.push(finding_method(file, line, &code[i].text, &method));
            }
        }
        i += 1;
    }
}

enum ForTarget {
    Local(String),
    Field(String),
}

impl ForTarget {
    fn name(&self) -> &str {
        match self {
            ForTarget::Local(n) | ForTarget::Field(n) => n,
        }
    }
}

/// For a `for` token at `i`, finds the loop's `in` and returns the
/// target identifier (plain or `self.field`), its line, and the index
/// just past it.
fn for_loop_target(file: &LexedFile, i: usize) -> Option<(ForTarget, u32, usize)> {
    let code = &file.code;
    // Find `in` at pattern depth 0 before the loop body opens.
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < code.len() {
        let t = &code[j];
        if t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if depth == 0 && t.is_ident("in") {
            break;
        } else if depth == 0 && t.is_punct("{") {
            return None; // not a `for … in` construct we understand
        }
        j += 1;
    }
    let mut k = j + 1;
    while k < code.len() && (code[k].is_punct("&") || code[k].is_ident("mut")) {
        k += 1;
    }
    if code.get(k).is_some_and(|t| t.is_ident("self"))
        && code.get(k + 1).is_some_and(|t| t.is_punct("."))
        && code.get(k + 2).is_some_and(|t| t.kind == TokenKind::Ident)
    {
        return Some((
            ForTarget::Field(code[k + 2].text.clone()),
            code[k + 2].line,
            k + 3,
        ));
    }
    if code.get(k).is_some_and(|t| t.kind == TokenKind::Ident) {
        return Some((ForTarget::Local(code[k].text.clone()), code[k].line, k + 1));
    }
    None
}

/// Walks a method chain starting at `code[start]` (expected `.`) and
/// returns the first iteration method hit, if any.
fn chain_hits_iteration(file: &LexedFile, start: usize) -> Option<(u32, String)> {
    let code = &file.code;
    let mut i = start;
    loop {
        if !code.get(i).is_some_and(|t| t.is_punct(".")) {
            return None;
        }
        let m = code.get(i + 1)?;
        if m.kind != TokenKind::Ident {
            return None;
        }
        if ITER_METHODS.contains(&m.text.as_str()) {
            return Some((m.line, m.text.clone()));
        }
        // Skip turbofish and call arguments, then continue the chain.
        let mut j = i + 2;
        if code.get(j).is_some_and(|t| t.is_punct("::")) {
            j += 1;
            if code.get(j).is_some_and(|t| t.is_punct("<")) {
                j = crate::context::skip_balanced(code, j);
            }
        }
        if code.get(j).is_some_and(|t| t.is_punct("(")) {
            j = crate::context::skip_balanced(code, j);
        } else {
            // Field access, not a call: keep walking (`a.b.iter()`).
        }
        i = j;
    }
}

fn finding(file: &LexedFile, line: u32, name: &str) -> Finding {
    Finding {
        file: file.path.clone(),
        line,
        rule: Rule::D001,
        message: format!(
            "iterating hash container `{name}` is order-nondeterministic; \
             use BTreeMap/BTreeSet or sort the keys first"
        ),
    }
}

fn finding_method(file: &LexedFile, line: u32, name: &str, method: &str) -> Finding {
    Finding {
        file: file.path.clone(),
        line,
        rule: Rule::D001,
        message: format!(
            "`.{method}()` on hash container `{name}` is order-nondeterministic; \
             use BTreeMap/BTreeSet or sort the keys first"
        ),
    }
}
