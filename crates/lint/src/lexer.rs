//! A hand-rolled Rust lexer: just enough tokenization for lint rules.
//!
//! The lexer turns a source file into a flat token stream with line
//! numbers. It understands exactly the constructs that would otherwise
//! make naive text matching lie to a lint rule:
//!
//! * line comments, (nested) block comments — kept as tokens so rules
//!   can read `// SAFETY:` and `// lint:` annotations;
//! * string / raw-string / byte-string / char literals — so `"thread_rng"`
//!   inside a message never triggers D002;
//! * lifetimes vs. char literals (`'a` vs `'a'`);
//! * multi-char operators the rules care about (`::`, `..`, `->`, `=>`,
//!   `==`) — everything else is single-char punctuation.
//!
//! It does **not** build a syntax tree. Rules do their own lightweight
//! scope tracking over the token stream (brace depth, `let` bindings,
//! struct bodies), which is the right cost/benefit point for a
//! vendoring-free workspace tool: no external parser, no build-time
//! impact, and failure modes that are easy to reason about (a missed
//! construct is a false negative, never a crash).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`let`, `HashMap`, `unsafe`, …).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal (`42`, `0x1f`, `1e3`, `1_000.5f64`).
    Number,
    /// String, raw-string, byte-string or char literal (text excluded
    /// from all code matching).
    Literal,
    /// `//` line comment or `/* */` block comment, including doc
    /// comments; text starts at the comment opener.
    Comment,
    /// Punctuation; multi-char for `::`, `..`, `..=`, `->`, `=>`, `==`.
    Punct,
}

/// One lexed token: kind, verbatim text, and 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// The token's text as it appears in the source. For multi-line
    /// block comments this spans lines; `line` is where it starts.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Token {
    /// True for identifier tokens with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for punctuation tokens with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// Lexes `src` into tokens. Never fails: unrecognized bytes become
/// single-char punctuation, unterminated literals run to end of file.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32) {
        self.out.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string_literal(line),
                'r' | 'b' if self.raw_or_byte_prefix() => self.prefixed_literal(line),
                '\'' => self.char_or_lifetime(line),
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                _ => self.punct(line),
            }
        }
        self.out
    }

    /// Is the `r`/`b` at the cursor a literal prefix (`r"`, `r#"`, `b"`,
    /// `br"`, `b'`, …) rather than the start of an identifier?
    fn raw_or_byte_prefix(&self) -> bool {
        let mut i = 1;
        // Consume the full prefix: r, b, rb, br (any one or two of them).
        if matches!(self.peek(0), Some('b')) && matches!(self.peek(1), Some('r')) {
            i = 2;
        }
        // Then any number of `#` (raw-string guards), then a quote.
        let mut j = i;
        while self.peek(j) == Some('#') {
            j += 1;
        }
        matches!(self.peek(j), Some('"')) || (i == 1 && j == i && self.peek(j) == Some('\''))
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Comment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::Comment, text, line);
    }

    fn string_literal(&mut self, line: u32) {
        let mut text = String::new();
        text.push(self.bump().expect("opening quote")); // leading `"`
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Literal, text, line);
    }

    /// `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `b'…'`.
    fn prefixed_literal(&mut self, line: u32) {
        let mut text = String::new();
        while matches!(self.peek(0), Some('r') | Some('b')) {
            text.push(self.bump().expect("prefix char"));
        }
        let mut guards = 0usize;
        while self.peek(0) == Some('#') {
            guards += 1;
            text.push(self.bump().expect("guard"));
        }
        match self.peek(0) {
            Some('\'') => {
                // Byte char `b'x'` (possibly escaped).
                text.push(self.bump().expect("quote"));
                if self.peek(0) == Some('\\') {
                    text.push(self.bump().expect("escape"));
                }
                if let Some(c) = self.bump() {
                    text.push(c);
                }
                if self.peek(0) == Some('\'') {
                    text.push(self.bump().expect("close quote"));
                }
            }
            Some('"') if guards == 0 && !text.contains('r') => {
                // Plain byte string: escapes apply.
                text.push(self.bump().expect("quote"));
                while let Some(c) = self.bump() {
                    text.push(c);
                    match c {
                        '\\' => {
                            if let Some(esc) = self.bump() {
                                text.push(esc);
                            }
                        }
                        '"' => break,
                        _ => {}
                    }
                }
            }
            Some('"') => {
                // Raw string: ends at `"` followed by `guards` hashes.
                text.push(self.bump().expect("quote"));
                'scan: while let Some(c) = self.bump() {
                    text.push(c);
                    if c == '"' {
                        for k in 0..guards {
                            if self.peek(k) != Some('#') {
                                continue 'scan;
                            }
                        }
                        for _ in 0..guards {
                            text.push(self.bump().expect("closing guard"));
                        }
                        break;
                    }
                }
            }
            _ => {}
        }
        self.push(TokenKind::Literal, text, line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        // `'a` (lifetime) vs `'a'` (char). A lifetime is `'` + ident
        // char(s) NOT followed by a closing `'`.
        let is_lifetime = match self.peek(1) {
            Some(c) if c.is_alphabetic() || c == '_' => self.peek(2) != Some('\''),
            _ => false,
        };
        let mut text = String::new();
        text.push(self.bump().expect("quote")); // `'`
        if is_lifetime {
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line);
            return;
        }
        // Char literal: one (possibly escaped) char then `'`.
        if self.peek(0) == Some('\\') {
            text.push(self.bump().expect("escape lead"));
            if let Some(esc) = self.bump() {
                text.push(esc);
            }
            // `\u{…}` escapes.
            if text.ends_with('u') && self.peek(0) == Some('{') {
                while let Some(c) = self.bump() {
                    text.push(c);
                    if c == '}' {
                        break;
                    }
                }
            }
        } else if let Some(c) = self.bump() {
            text.push(c);
        }
        if self.peek(0) == Some('\'') {
            text.push(self.bump().expect("close quote"));
        }
        self.push(TokenKind::Literal, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line);
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let take = c.is_ascii_alphanumeric()
                || c == '_'
                // A `.` continues the number only when not part of `..`
                // (range syntax) and followed by a digit: `1.5` yes,
                // `0..n` and `x.1.f()` no.
                || (c == '.'
                    && !text.contains('.')
                    && matches!(self.peek(1), Some(d) if d.is_ascii_digit()));
            if take {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, line);
    }

    fn punct(&mut self, line: u32) {
        let c = self.bump().expect("punct char");
        let mut text = String::from(c);
        // Only the multi-char operators rules actually match on.
        let joined = match (c, self.peek(0)) {
            (':', Some(':')) => Some("::"),
            ('.', Some('.')) => Some(".."),
            ('-', Some('>')) => Some("->"),
            ('=', Some('>')) => Some("=>"),
            ('=', Some('=')) => Some("=="),
            _ => None,
        };
        if let Some(j) = joined {
            self.bump();
            text = j.to_string();
            if j == ".." && self.peek(0) == Some('=') {
                self.bump();
                text.push('=');
            }
        }
        self.push(TokenKind::Punct, text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_strings_and_comments_are_distinguished() {
        let toks = kinds("let x = \"thread_rng\"; // thread_rng\nthread_rng()");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        // The string and the comment must NOT contribute ident tokens.
        assert_eq!(idents, vec!["let", "x", "thread_rng"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }");
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Literal && t.starts_with('\''))
            .count();
        assert_eq!(chars, 2, "'x' and '\\n'");
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let toks = kinds(r##"let s = r#"says "hi" // not a comment"#; done"##);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s", "done"]);
        assert!(toks.iter().all(|(k, _)| *k != TokenKind::Comment));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = kinds("/* outer /* inner */ still outer */ code");
        assert_eq!(toks[0].0, TokenKind::Comment);
        assert!(toks[0].1.contains("inner"));
        assert_eq!(toks[1], (TokenKind::Ident, "code".to_string()));
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let toks = lex("a\n\"two\nlines\"\nb");
        assert_eq!(toks[0].line, 1); // a
        assert_eq!(toks[1].line, 2); // the string starts on line 2
        assert_eq!(toks[2].line, 4); // b is after the embedded newline
    }

    #[test]
    fn multi_char_puncts_are_joined() {
        let toks = kinds("std::thread 0..n a..=b x -> y m => n a == b");
        let puncts: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["::", "..", "..=", "->", "=>", "=="]);
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = kinds("for i in 0..10 { let f = 1.5e3; }");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e3"]);
    }

    #[test]
    fn byte_and_raw_prefixes_are_literals_not_idents() {
        let toks = kinds("b\"bytes\" br#\"raw\"# b'x' r\"raw2\" rust");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["rust"]);
        let lits = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Literal)
            .count();
        assert_eq!(lits, 4);
    }
}
