//! The incremental round pipeline must be invisible in results: an
//! engine that carries eligibility deltas and a persistent scorer
//! cache across rounds must produce round reports — and a lifetime
//! summary — byte-identical to the `--no-incremental` rebuild
//! baseline, at any thread count, even while the pool rotates and a
//! previously-unseen worker is folded into the live network
//! mid-stream (the one event that invalidates the scorer cache).
//!
//! Four runs of the same arrival script are compared pairwise:
//! `{incremental, rebuild} × {threads 1, 4}`. Telemetry fields
//! (`cache_*`, `elig_*`, the `*_ms` phase split) are excluded from
//! report equality by design — the suite separately asserts they show
//! the incremental machinery actually engaged (carried rounds with
//! warm cache hits) rather than silently falling back to rebuilds.

use sc_core::{DitaBuilder, DitaConfig, DitaPipeline, OnlineConfig, Parallelism};
use sc_datagen::{DatasetProfile, InstanceOptions, SyntheticDataset};
use sc_influence::RpoParams;
use sc_sim::{
    scripted_event, EngineBuilder, EventKind, NetworkMode, OnlineSummary, PipelineMode, RoundReport,
};
use sc_types::{CheckIn, History, TimeInstant, VenueId, Worker, WorkerId};

fn dataset() -> SyntheticDataset {
    let mut profile = DatasetProfile::brightkite_small();
    profile.n_workers = 140;
    profile.n_venues = 110;
    profile.checkins_per_worker = 10;
    SyntheticDataset::generate(&profile, 17)
}

fn pipeline(data: &SyntheticDataset, threads: Parallelism, online: OnlineConfig) -> DitaPipeline {
    DitaBuilder::new()
        .config(DitaConfig {
            n_topics: 5,
            lda_sweeps: 10,
            infer_sweeps: 5,
            rpo: RpoParams {
                max_sets: 4_000,
                threads,
                ..Default::default()
            },
            online,
            solver: Default::default(),
            seed: 29,
        })
        .build(&data.social, &data.histories)
        .unwrap()
}

/// One scripted streaming day on an adaptive, maintaining engine:
/// a morning cohort, hourly task arrivals, bounded pool rotation
/// every round, and a fold-in of a previously-unseen worker at 11:00
/// (which grows the population and so clears the scorer cache).
fn run_script(
    data: &SyntheticDataset,
    threads: Parallelism,
    incremental: bool,
) -> (Vec<RoundReport>, OnlineSummary) {
    let online = OnlineConfig {
        round_hours: 1,
        growth_cap: 256,
        eviction_horizon: 2,
        target_sets: 0,
        incremental,
    };
    let pipeline = pipeline(data, threads, online);
    let trained = pipeline.model().n_workers();
    let mut engine = EngineBuilder::new()
        .pipeline(PipelineMode::Owned(Box::new(pipeline)))
        .network(NetworkMode::Adaptive(Box::new(data.social.clone())))
        .config(online)
        .build();

    let cohort = data.instance_for_day(0, 0, 80, InstanceOptions::default());
    for worker in cohort.instance.workers {
        engine.ingest(EventKind::WorkerArrival { worker });
    }

    let mut reports = Vec::new();
    let mut next_id = 0u32;
    for hour in 8..16i64 {
        let now = TimeInstant::at(0, hour);
        if hour == 11 {
            // Mid-stream fold-in: the only event that invalidates the
            // persistent scorer cache, and a worker-axis delta for the
            // eligibility state.
            let venue = data.venues.venue(VenueId::new(7));
            let mut hist = History::new();
            hist.push(CheckIn::at(
                WorkerId::from(trained),
                venue.id,
                venue.location,
                now,
                venue.categories.clone(),
            ));
            let late = Worker::new(WorkerId::from(trained), venue.location, 25.0);
            assert!(engine
                .ingest(EventKind::WorkerNew {
                    worker: late,
                    friends: vec![WorkerId::new(0)],
                    history: hist,
                })
                .is_online());
        }
        for _ in 0..20 {
            engine.ingest(scripted_event(data, 29, next_id, now, 2.5));
            next_id += 1;
        }
        reports.push(engine.run_round(now, sc_assign::AlgorithmKind::Ia));
    }
    let summary = engine.summary();
    (reports, summary)
}

#[test]
fn incremental_rounds_match_rebuild_rounds_at_any_thread_count() {
    let data = dataset();
    let (baseline, base_summary) = run_script(&data, Parallelism::Single, false);
    assert!(
        base_summary.assigned > 0,
        "non-trivial fixture: the script must assign something"
    );

    for (threads, incremental) in [
        (Parallelism::Single, true),
        (Parallelism::Fixed(4), false),
        (Parallelism::Fixed(4), true),
    ] {
        let (reports, summary) = run_script(&data, threads, incremental);
        assert_eq!(
            baseline, reports,
            "reports diverged at threads={threads:?} incremental={incremental}"
        );
        assert_eq!(
            base_summary, summary,
            "summary diverged at threads={threads:?} incremental={incremental}"
        );
    }

    // The incremental machinery must actually have engaged: after the
    // first round (and outside the fold-in round, which clears the
    // cache and may reshape the worker axis) rounds are served by
    // deltas with warm cache hits.
    let (inc, _) = run_script(&data, Parallelism::Single, true);
    assert!(
        inc.iter().any(|r| !r.elig_full_rebuild && r.cache_hits > 0),
        "no round was served incrementally with a warm cache"
    );
    assert!(
        inc.iter().skip(1).all(|r| !r.elig_full_rebuild),
        "a post-warmup round unexpectedly fell back to a full rebuild"
    );
    assert!(
        inc[0].elig_full_rebuild,
        "the first round has no prior state and must rebuild"
    );
}
