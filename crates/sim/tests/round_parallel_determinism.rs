//! Intra-round parallelism must never change results: an online
//! engine whose pipeline scores on N threads must produce round
//! reports — and a maintained pool — byte-identical to the
//! single-threaded engine, report-for-report, on the same arrival
//! script. Together with `sc-assign`'s matrix-for-matrix suite
//! (`crates/assign/tests/sharded_eligibility.rs`) this pins the
//! determinism contract of the sharded scoring path end-to-end.

use sc_assign::{run_with_matrix, AlgorithmKind, AssignInput, EligibilityMatrix};
use sc_core::{DitaBuilder, DitaConfig, DitaPipeline, OnlineConfig, Parallelism};
use sc_datagen::{DatasetProfile, InstanceOptions, SyntheticDataset};
use sc_influence::RpoParams;
use sc_sim::{scripted_event, EngineBuilder, EventKind, NetworkMode, PipelineMode, RoundReport};
use sc_types::TimeInstant;

fn dataset() -> SyntheticDataset {
    let mut profile = DatasetProfile::brightkite_small();
    profile.n_workers = 150;
    profile.n_venues = 120;
    profile.checkins_per_worker = 10;
    SyntheticDataset::generate(&profile, 11)
}

fn pipeline(data: &SyntheticDataset, threads: Parallelism, online: OnlineConfig) -> DitaPipeline {
    DitaBuilder::new()
        .config(DitaConfig {
            n_topics: 5,
            lda_sweeps: 10,
            infer_sweeps: 5,
            rpo: RpoParams {
                max_sets: 4_000,
                threads,
                ..Default::default()
            },
            online,
            solver: Default::default(),
            seed: 21,
        })
        .build(&data.social, &data.histories)
        .unwrap()
}

/// Runs the scripted arrival stream on one engine and returns its
/// per-round reports.
fn run_script(
    data: &SyntheticDataset,
    threads: Parallelism,
    online: OnlineConfig,
) -> Vec<RoundReport> {
    let pipeline = pipeline(data, threads, online);
    let mut engine = EngineBuilder::new()
        .pipeline(PipelineMode::Owned(Box::new(pipeline)))
        .network(NetworkMode::Fixed(&data.social))
        .build();
    let cohort = data.instance_for_day(0, 0, 90, InstanceOptions::default());
    for worker in cohort.instance.workers {
        engine.ingest(EventKind::WorkerArrival { worker });
    }
    let mut reports = Vec::new();
    let mut next_id = 0u32;
    for hour in 8..16i64 {
        let now = TimeInstant::at(0, hour);
        for _ in 0..25 {
            engine.ingest(scripted_event(data, 21, next_id, now, 2.5));
            next_id += 1;
        }
        reports.push(engine.run_round(now, AlgorithmKind::Ia));
    }
    reports
}

#[test]
fn round_reports_identical_across_thread_budgets() {
    let data = dataset();
    let online = OnlineConfig {
        round_hours: 1,
        growth_cap: 512,
        eviction_horizon: 3,
        target_sets: 0,
        incremental: true,
    };
    let single = run_script(&data, Parallelism::Single, online);
    for threads in [2usize, 4, 8] {
        let sharded = run_script(&data, Parallelism::Fixed(threads), online);
        assert_eq!(
            single, sharded,
            "round reports diverged at threads={threads}"
        );
    }
}

#[test]
fn frozen_round_reports_identical_across_thread_budgets() {
    // Without maintenance the only thread-sensitive work is the
    // scoring path itself — the purest report-for-report check.
    let data = dataset();
    let single = run_script(&data, Parallelism::Single, OnlineConfig::default());
    let sharded = run_script(&data, Parallelism::Fixed(4), OnlineConfig::default());
    assert_eq!(single, sharded);
    assert!(
        single.iter().map(|r| r.assigned).sum::<usize>() > 0,
        "non-trivial fixture"
    );
}

#[test]
fn maintained_pools_identical_across_thread_budgets() {
    let data = dataset();
    let online = OnlineConfig {
        round_hours: 1,
        growth_cap: 256,
        eviction_horizon: 2,
        target_sets: 0,
        incremental: true,
    };
    let run_pool = |threads| {
        let pipeline = pipeline(&data, threads, online);
        let mut engine = EngineBuilder::new()
            .pipeline(PipelineMode::Owned(Box::new(pipeline)))
            .network(NetworkMode::Fixed(&data.social))
            .build();
        let cohort = data.instance_for_day(0, 0, 60, InstanceOptions::default());
        for worker in cohort.instance.workers {
            engine.ingest(EventKind::WorkerArrival { worker });
        }
        for hour in 8..14i64 {
            let now = TimeInstant::at(0, hour);
            for i in 0..10u32 {
                engine.ingest(scripted_event(&data, 5, hour as u32 * 100 + i, now, 3.0));
            }
            engine.run_round(now, AlgorithmKind::Ia);
        }
        engine.into_pipeline().model().pool().fingerprint()
    };
    assert_eq!(
        run_pool(Parallelism::Single),
        run_pool(Parallelism::Fixed(4))
    );
}

#[test]
fn full_assignment_path_identical_across_thread_budgets() {
    // One batch instance through the whole pipeline surface
    // (`assign_many` shares matrix + warm cache across algorithms):
    // every algorithm's assignment must match the single-thread run
    // exactly, and the sharded matrix must equal the sequential one.
    let data = dataset();
    let p1 = pipeline(&data, Parallelism::Single, OnlineConfig::default());
    let p4 = pipeline(&data, Parallelism::Fixed(4), OnlineConfig::default());
    let day = data.instance_for_day(0, 120, 100, InstanceOptions::default());

    let m1 = EligibilityMatrix::build_with_threads(&day.instance, 1);
    let m4 = EligibilityMatrix::build_with_threads(&day.instance, 4);
    assert_eq!(m1, m4, "matrix-for-matrix");

    let kinds = [
        AlgorithmKind::Mta,
        AlgorithmKind::Ia,
        AlgorithmKind::Eia,
        AlgorithmKind::Dia,
        AlgorithmKind::Mi,
    ];
    let a1 = p1.assign_many(&day.instance, Some(&day.task_venues), &kinds);
    let a4 = p4.assign_many(&day.instance, Some(&day.task_venues), &kinds);
    for ((kind, x), y) in kinds.iter().zip(a1.iter()).zip(a4.iter()) {
        assert_eq!(x.pairs(), y.pairs(), "{kind}: assignment diverged");
    }

    // And the raw sharded scoring scan equals the sequential scan.
    let scorer = p1.scorer();
    let input1 = AssignInput::new(&day.instance, &scorer);
    let input4 = AssignInput::new(&day.instance, &scorer).with_threads(4);
    let ia1 = run_with_matrix(AlgorithmKind::Ia, &input1, &m1);
    let ia4 = run_with_matrix(AlgorithmKind::Ia, &input4, &m1);
    assert_eq!(ia1.pairs(), ia4.pairs());
}
