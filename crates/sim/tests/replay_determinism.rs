//! Release-CI pins for the dataset-replay subsystem.
//!
//! A replayed day must be a pure function of `(trace, config)`:
//!
//! * the same replay run twice produces equal reports;
//! * `threads = 1` and `threads = N` produce **equal** reports — the
//!   stream carries no randomness, pool maintenance continues the
//!   per-set seed streams, fold-in coins are seeded per `(worker, set)`,
//!   and every sharded scoring pass merges in index order;
//! * worker fold-in composes with all of the above: the fold-ins of the
//!   two runs land in the same rounds with the same dense ids.
//!
//! Runs under `--release` in CI: parallel and arena-splicing bugs love
//! to hide below optimization level O.

use sc_assign::AlgorithmKind;
use sc_core::{DitaConfig, OnlineConfig};
use sc_datagen::{DatasetProfile, LoadedDataset, ReplayOptions, SyntheticDataset};
use sc_influence::{Parallelism, RpoParams};
use sc_sim::replay_day;
use sc_types::HistoryStore;

/// A synthetic trace with a genuinely dynamic population: every 7th
/// worker's history is truncated to day ≥ 1, so they first appear
/// mid-replay and must be folded in.
fn trace() -> LoadedDataset {
    let mut profile = DatasetProfile::brightkite_small();
    profile.n_workers = 120;
    profile.n_venues = 80;
    profile.checkins_per_worker = 12;
    let data = SyntheticDataset::generate(&profile, 0xBEEF);
    let mut store = HistoryStore::with_workers(profile.n_workers);
    for (w, history) in data.histories.iter() {
        for r in history.records() {
            if w.raw() % 7 == 0 && r.arrived.day() < 1 {
                continue;
            }
            store.push(r.clone());
        }
    }
    LoadedDataset::from_parts(data.social_edges.clone(), store, 0xBEEF).unwrap()
}

fn config(threads: usize) -> DitaConfig {
    DitaConfig {
        n_topics: 5,
        lda_sweeps: 10,
        infer_sweeps: 5,
        rpo: RpoParams {
            max_sets: 4_000,
            threads: Parallelism::Fixed(threads),
            ..Default::default()
        },
        online: OnlineConfig {
            round_hours: 1,
            growth_cap: 512,
            eviction_horizon: 4,
            target_sets: 0,
            incremental: true,
        },
        solver: Default::default(),
        seed: 0x5EED,
    }
}

fn opts() -> ReplayOptions {
    ReplayOptions {
        task_every: 3,
        valid_hours: 3.0,
        ..Default::default()
    }
}

#[test]
fn replay_reports_are_identical_across_thread_budgets() {
    let data = trace();
    let single = replay_day(&data, 1, config(1), &opts(), AlgorithmKind::Ia).unwrap();
    let multi = replay_day(&data, 1, config(4), &opts(), AlgorithmKind::Ia).unwrap();
    assert!(!single.report.rounds.is_empty());
    assert_eq!(
        single.report, multi.report,
        "replay must be bit-identical at any thread budget"
    );
    // The maintained pools end in the same state too.
    assert_eq!(
        single.engine.pipeline().model().pool().fingerprint(),
        multi.engine.pipeline().model().pool().fingerprint()
    );
    assert_eq!(
        single.engine.network().n_workers(),
        multi.engine.network().n_workers()
    );
}

#[test]
fn replay_is_reproducible_run_to_run() {
    let data = trace();
    let a = replay_day(&data, 1, config(2), &opts(), AlgorithmKind::Ia).unwrap();
    let b = replay_day(&data, 1, config(2), &opts(), AlgorithmKind::Ia).unwrap();
    assert_eq!(a.report, b.report);
}

#[test]
fn fold_ins_happen_and_score_nonzero() {
    let data = trace();
    let run = replay_day(&data, 1, config(2), &opts(), AlgorithmKind::Ia).unwrap();
    assert!(
        run.report.fold_ins() > 0,
        "the truncated cohort must arrive mid-replay"
    );
    // Every folded worker is immediately scoreable: non-zero influence
    // against a task at their first observed venue.
    let scorer = run.engine.pipeline().scorer();
    let mut nonzero = 0usize;
    for &(trace_id, dense) in &run.report.folded {
        let rec = &data.histories.history(trace_id).records()[0];
        let venue = data
            .venues
            .iter()
            .find(|v| v.id == rec.venue)
            .expect("venue reconstructed");
        let task = sc_types::Task::with_categories(
            sc_types::TaskId::new(50_000 + dense.raw()),
            venue.location,
            sc_types::TimeInstant::at(1, 15),
            sc_types::Duration::hours(3),
            venue.categories.clone(),
        );
        if scorer.score(dense, &task) > 0.0 {
            nonzero += 1;
        }
    }
    assert!(
        nonzero > 0,
        "folded-in workers must earn non-zero influence without a retrain \
         ({} folded, {nonzero} non-zero)",
        run.report.fold_ins()
    );
}

#[test]
fn replay_conserves_tasks_and_caps_rounds() {
    let data = trace();
    let run = replay_day(&data, 1, config(2), &opts(), AlgorithmKind::Ia).unwrap();
    let s = &run.report.summary;
    assert_eq!(s.published, s.assigned + s.expired + s.still_open);
    assert!(s.assigned > 0);

    let capped_opts = ReplayOptions {
        max_rounds: 3,
        ..opts()
    };
    let capped = replay_day(&data, 1, config(2), &capped_opts, AlgorithmKind::Ia).unwrap();
    assert_eq!(capped.report.rounds.len(), 3);
    // The capped run is a prefix of the full run, round for round.
    assert_eq!(capped.report.rounds[..], run.report.rounds[..3]);
}
