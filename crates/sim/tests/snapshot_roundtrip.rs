//! Snapshot/restore closes the determinism contract across process
//! boundaries: an engine serialized mid-stream — even right after a
//! fold-in, the event that reshapes the worker axis and clears every
//! cache — must, once restored, serve the remaining stream with round
//! reports and a lifetime summary byte-identical to the uninterrupted
//! engine, at any thread count.

use sc_core::{DitaBuilder, DitaConfig, DitaPipeline, OnlineConfig, Parallelism};
use sc_datagen::{DatasetProfile, InstanceOptions, SyntheticDataset};
use sc_influence::RpoParams;
use sc_sim::{
    scripted_event, snapshot_from_str, snapshot_to_string, EngineBuilder, EventKind, NetworkMode,
    OnlineEngine, OnlineSummary, PipelineMode, RoundReport,
};
use sc_types::{CheckIn, History, TimeInstant, VenueId, Worker, WorkerId};

fn dataset() -> SyntheticDataset {
    let mut profile = DatasetProfile::brightkite_small();
    profile.n_workers = 120;
    profile.n_venues = 100;
    profile.checkins_per_worker = 10;
    SyntheticDataset::generate(&profile, 53)
}

const ONLINE: OnlineConfig = OnlineConfig {
    round_hours: 1,
    growth_cap: 256,
    eviction_horizon: 2,
    target_sets: 0,
    incremental: true,
};

fn pipeline(data: &SyntheticDataset, threads: Parallelism) -> DitaPipeline {
    DitaBuilder::new()
        .config(DitaConfig {
            n_topics: 5,
            lda_sweeps: 10,
            infer_sweeps: 5,
            rpo: RpoParams {
                max_sets: 3_000,
                threads,
                ..Default::default()
            },
            online: ONLINE,
            solver: Default::default(),
            seed: 31,
        })
        .build(&data.social, &data.histories)
        .unwrap()
}

fn engine(data: &SyntheticDataset, threads: Parallelism) -> OnlineEngine<'static> {
    let pipeline = pipeline(data, threads);
    EngineBuilder::new()
        .pipeline(PipelineMode::Owned(Box::new(pipeline)))
        .network(NetworkMode::Adaptive(Box::new(data.social.clone())))
        .config(ONLINE)
        .build()
}

/// Streams one scripted hour into the engine: 15 task arrivals, then
/// the round closes.
fn play_hour(
    engine: &mut OnlineEngine<'static>,
    data: &SyntheticDataset,
    hour: i64,
) -> RoundReport {
    let now = TimeInstant::at(0, hour);
    let base = (hour - 8) as u32 * 15;
    for i in 0..15u32 {
        engine.ingest(scripted_event(data, 31, base + i, now, 2.5));
    }
    engine.run_round(now, sc_assign::AlgorithmKind::Ia)
}

/// Folds a previously-unseen worker into the live network.
fn fold_in(engine: &mut OnlineEngine<'static>, data: &SyntheticDataset, now: TimeInstant) {
    let trained = engine.pipeline().model().n_workers();
    let venue = data.venues.venue(VenueId::new(3));
    let mut hist = History::new();
    hist.push(CheckIn::at(
        WorkerId::from(trained),
        venue.id,
        venue.location,
        now,
        venue.categories.clone(),
    ));
    let late = Worker::new(WorkerId::from(trained), venue.location, 25.0);
    assert!(engine
        .ingest(EventKind::WorkerNew {
            worker: late,
            friends: vec![WorkerId::new(2)],
            history: hist,
        })
        .is_online());
}

/// Runs the scripted day on one engine. At 11:00 a new worker folds
/// in; when `interrupt` is set the engine is serialized immediately
/// after (before the next rotation touches the reshaped state) and the
/// rest of the day is served by the **restored** engine.
fn run_day(
    data: &SyntheticDataset,
    threads: Parallelism,
    interrupt: bool,
) -> (Vec<RoundReport>, OnlineSummary) {
    let mut engine = engine(data, threads);
    let cohort = data.instance_for_day(0, 0, 70, InstanceOptions::default());
    for worker in cohort.instance.workers {
        engine.ingest(EventKind::WorkerArrival { worker });
    }

    let mut reports = Vec::new();
    for hour in 8..11i64 {
        reports.push(play_hour(&mut engine, data, hour));
    }
    fold_in(&mut engine, data, TimeInstant::at(0, 11));
    if interrupt {
        let frozen = snapshot_to_string(&engine).expect("snapshot must serialize");
        engine = snapshot_from_str(&frozen).expect("snapshot must round-trip");
    }
    for hour in 11..16i64 {
        reports.push(play_hour(&mut engine, data, hour));
    }
    (reports, engine.summary())
}

#[test]
fn restored_engine_finishes_the_day_byte_identically() {
    let data = dataset();
    let (baseline, base_summary) = run_day(&data, Parallelism::Single, false);
    assert!(
        base_summary.assigned > 0 && base_summary.still_open + base_summary.expired > 0,
        "non-trivial fixture: the script must exercise every outcome"
    );

    // {interrupted, uninterrupted} × {threads 1, 4}: all four runs of
    // the same script must agree byte-for-byte.
    for (threads, interrupt) in [
        (Parallelism::Single, true),
        (Parallelism::Fixed(4), false),
        (Parallelism::Fixed(4), true),
    ] {
        let (reports, summary) = run_day(&data, threads, interrupt);
        assert_eq!(
            baseline, reports,
            "reports diverged at threads={threads:?} interrupt={interrupt}"
        );
        assert_eq!(
            base_summary, summary,
            "summary diverged at threads={threads:?} interrupt={interrupt}"
        );
    }
}

#[test]
fn snapshot_text_is_stable_across_a_roundtrip() {
    // Serialize → restore → serialize again: the two texts must be
    // identical, i.e. restoration loses nothing the snapshot records.
    let data = dataset();
    let mut engine = engine(&data, Parallelism::Single);
    let cohort = data.instance_for_day(0, 0, 40, InstanceOptions::default());
    for worker in cohort.instance.workers {
        engine.ingest(EventKind::WorkerArrival { worker });
    }
    play_hour(&mut engine, &data, 8);
    fold_in(&mut engine, &data, TimeInstant::at(0, 9));

    let first = snapshot_to_string(&engine).unwrap();
    let restored = snapshot_from_str(&first).unwrap();
    let second = snapshot_to_string(&restored).unwrap();
    assert_eq!(first, second, "snapshot text must be roundtrip-stable");
}
