//! Online-mode determinism: the engine's round reports are a pure
//! function of `(dataset seed, pipeline config, arrival script)` — the
//! maintenance thread budget must never leak into results.

use sc_assign::AlgorithmKind;
use sc_core::{DitaBuilder, DitaConfig, DitaPipeline, OnlineConfig, Parallelism};
use sc_datagen::{DatasetProfile, InstanceOptions, SyntheticDataset};
use sc_influence::{PropagationModel, RpoParams, RrrPool};
use sc_sim::{EngineBuilder, EventKind, NetworkMode, PipelineMode, RoundReport};
use sc_types::{Duration, Task, TaskId, TimeInstant, VenueId};

fn dataset() -> SyntheticDataset {
    let mut profile = DatasetProfile::brightkite_small();
    profile.n_workers = 120;
    profile.n_venues = 120;
    profile.checkins_per_worker = 10;
    SyntheticDataset::generate(&profile, 77)
}

fn pipeline(dataset: &SyntheticDataset, threads: Parallelism) -> DitaPipeline {
    DitaBuilder::new()
        .config(DitaConfig {
            n_topics: 6,
            lda_sweeps: 12,
            infer_sweeps: 6,
            rpo: RpoParams {
                max_sets: 6_000,
                threads,
                ..Default::default()
            },
            online: OnlineConfig {
                round_hours: 1,
                growth_cap: 512,
                eviction_horizon: 3,
                target_sets: 0,
                incremental: true,
            },
            solver: Default::default(),
            seed: 9,
        })
        .build(&dataset.social, &dataset.histories)
        .unwrap()
}

/// A fixed three-day arrival script: workers refresh each morning,
/// tasks arrive every hour from deterministic venues.
fn drive(
    dataset: &SyntheticDataset,
    pipeline: DitaPipeline,
) -> (Vec<RoundReport>, sc_sim::OnlineSummary, u64) {
    let mut engine = EngineBuilder::new()
        .pipeline(PipelineMode::Owned(Box::new(pipeline)))
        .network(NetworkMode::Fixed(&dataset.social))
        .build();
    let mut reports = Vec::new();
    let mut next_id = 0u32;
    for day in 0..3i64 {
        let cohort = dataset.instance_for_day(day as usize, 0, 40, InstanceOptions::default());
        for worker in cohort.instance.workers {
            engine.ingest(EventKind::WorkerArrival { worker });
        }
        for hour in 8..16 {
            let now = TimeInstant::at(day, hour);
            for i in 0..6u32 {
                let venue = dataset.venues.venue(VenueId::from(
                    ((next_id as usize) * 31 + i as usize) % dataset.venues.len(),
                ));
                engine.ingest(EventKind::TaskArrival {
                    task: Task::with_categories(
                        TaskId::new(next_id),
                        venue.location,
                        now,
                        Duration::hours_f64(3.0),
                        venue.categories.clone(),
                    ),
                    venue: venue.id,
                });
                next_id += 1;
            }
            reports.push(engine.run_round(now, AlgorithmKind::Ia));
        }
    }
    let fp = engine.pipeline().model().pool().fingerprint();
    let s = engine.summary();
    assert_eq!(
        s.published,
        s.assigned + s.expired + s.still_open,
        "task conservation must hold over a multi-day streaming run"
    );
    (reports, s, fp)
}

/// Canonical textual form of a round report with the wall-clock field
/// dropped — "byte-identical" comparisons happen on this rendering.
fn render(reports: &[RoundReport]) -> String {
    reports
        .iter()
        .map(|r| {
            format!(
                "{}|{:?}|{}|{}|{}|{}|{}|{}|{:.17e}|{}|{}|{}",
                r.round,
                r.now,
                r.task_arrivals,
                r.worker_arrivals,
                r.available_tasks,
                r.online_workers,
                r.assigned,
                r.expired,
                r.ai,
                r.pool_sets,
                r.sets_evicted,
                r.sets_added
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn round_reports_identical_across_thread_budgets() {
    let data = dataset();
    let single = pipeline(&data, Parallelism::Single);
    let four = pipeline(&data, Parallelism::Fixed(4));
    assert_eq!(
        single.model().pool().fingerprint(),
        four.model().pool().fingerprint(),
        "trained pools must be bit-identical (PR 2 contract)"
    );

    let (r1, s1, fp1) = drive(&data, single);
    let (r4, s4, fp4) = drive(&data, four);
    assert_eq!(s1, s4, "summaries must not depend on the thread budget");
    assert_eq!(r1.len(), r4.len());
    assert_eq!(r1, r4, "round reports must not depend on the thread budget");
    assert_eq!(render(&r1), render(&r4), "byte-identical rendered reports");
    assert_eq!(fp1, fp4, "maintained pools must stay bit-identical");
}

#[test]
fn reruns_are_deterministic() {
    let data = dataset();
    let (a, sa, fa) = drive(&data, pipeline(&data, Parallelism::Fixed(2)));
    let (b, sb, fb) = drive(&data, pipeline(&data, Parallelism::Fixed(2)));
    assert_eq!(a, b);
    assert_eq!(sa, sb);
    assert_eq!(fa, fb);
}

#[test]
fn maintenance_happens_and_is_bounded() {
    let data = dataset();
    let (reports, _, _) = drive(&data, pipeline(&data, Parallelism::Fixed(2)));
    let evicted: usize = reports.iter().map(|r| r.sets_evicted).sum();
    let added: usize = reports.iter().map(|r| r.sets_added).sum();
    assert!(evicted > 0, "a 24-round run past horizon 3 must rotate");
    assert!(added > 0);
    for r in &reports {
        assert!(
            r.sets_evicted <= 512 && r.sets_added <= 512,
            "quantum bound"
        );
    }
}

#[test]
fn maintained_pool_equals_fresh_pool_of_same_stream_window() {
    // End-to-end closure of the determinism contract: after a whole
    // streaming run, the engine's live pool must be byte-for-byte the
    // pool a from-scratch sampler would produce for the same
    // `(master_seed, stream window)`.
    let data = dataset();
    let (_, _, _) = drive(&data, pipeline(&data, Parallelism::Single));
    let p = pipeline(&data, Parallelism::Single);
    let mut engine = EngineBuilder::new()
        .pipeline(PipelineMode::Owned(Box::new(p)))
        .network(NetworkMode::Fixed(&data.social))
        .build();
    for hour in 0..6 {
        let now = TimeInstant::at(0, hour);
        engine.run_round(now, AlgorithmKind::Ia);
    }
    let pool = engine.pipeline().model().pool();
    let total = pool.stream_base() + pool.n_sets();
    let mut fresh = RrrPool::generate_sharded(
        &data.social,
        total,
        PropagationModel::WeightedCascade,
        pool.master_seed(),
        1,
    );
    fresh.advance_epoch();
    fresh.evict_before_epoch(1, pool.stream_base());
    assert_eq!(fresh.fingerprint(), pool.fingerprint());
    assert_eq!(fresh.membership_arena(), pool.membership_arena());
}
