//! Per-algorithm evaluation metrics.

use sc_stats::OnlineMoments;
use serde::{Deserialize, Serialize};

/// Averaged metrics of one algorithm at one sweep point
/// (the five quantities the paper's comparison figures plot).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsRow {
    /// Algorithm label ("MTA", "IA", …).
    pub algorithm: String,
    /// Mean CPU time per instance, milliseconds.
    pub cpu_ms: f64,
    /// Mean number of assigned tasks `|A|`.
    pub assigned: f64,
    /// Mean Average Influence (Eq. 6).
    pub ai: f64,
    /// Mean Average Propagation (Eq. 7).
    pub ap: f64,
    /// Mean worker travel distance in km.
    pub travel_km: f64,
}

/// Accumulates metrics over the days of an experiment.
#[derive(Debug, Clone, Default)]
pub struct MetricsAccumulator {
    cpu_ms: OnlineMoments,
    assigned: OnlineMoments,
    ai: OnlineMoments,
    ap: OnlineMoments,
    travel_km: OnlineMoments,
}

impl MetricsAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one day's run.
    pub fn push(&mut self, cpu_ms: f64, assigned: usize, ai: f64, ap: f64, travel_km: f64) {
        self.cpu_ms.push(cpu_ms);
        self.assigned.push(assigned as f64);
        self.ai.push(ai);
        self.ap.push(ap);
        self.travel_km.push(travel_km);
    }

    /// Number of recorded days.
    pub fn count(&self) -> u64 {
        self.cpu_ms.count()
    }

    /// Freezes into a row.
    pub fn finish(&self, algorithm: impl Into<String>) -> MetricsRow {
        MetricsRow {
            algorithm: algorithm.into(),
            cpu_ms: self.cpu_ms.mean(),
            assigned: self.assigned.mean(),
            ai: self.ai.mean(),
            ap: self.ap.mean(),
            travel_km: self.travel_km.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_means() {
        let mut acc = MetricsAccumulator::new();
        acc.push(10.0, 100, 0.2, 5.0, 3.0);
        acc.push(20.0, 200, 0.4, 7.0, 5.0);
        let row = acc.finish("IA");
        assert_eq!(row.algorithm, "IA");
        assert!((row.cpu_ms - 15.0).abs() < 1e-12);
        assert!((row.assigned - 150.0).abs() < 1e-12);
        assert!((row.ai - 0.3).abs() < 1e-12);
        assert!((row.ap - 6.0).abs() < 1e-12);
        assert!((row.travel_km - 4.0).abs() < 1e-12);
        assert_eq!(acc.count(), 2);
    }

    #[test]
    fn empty_accumulator_finishes_to_zeros() {
        let row = MetricsAccumulator::new().finish("MTA");
        assert_eq!(row.cpu_ms, 0.0);
        assert_eq!(row.assigned, 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let row = MetricsRow {
            algorithm: "DIA".into(),
            cpu_ms: 1.0,
            assigned: 2.0,
            ai: 3.0,
            ap: 4.0,
            travel_km: 5.0,
        };
        let json = serde_json::to_string(&row).unwrap();
        let back: MetricsRow = serde_json::from_str(&json).unwrap();
        assert_eq!(row, back);
    }
}
