//! Trace replay: drive the online engine from a recorded check-in
//! stream.
//!
//! [`replay_day`] is the end-to-end driver of the dataset-backed
//! workload class:
//!
//! 1. **train on the past** — the pipeline is trained on
//!    [`LoadedDataset::training_slice`], i.e. the population and
//!    histories observed *before* the replay day (what a platform
//!    actually knows when the day opens);
//! 2. **replay the day** — a [`ReplayStream`] turns the day's
//!    check-ins into a deterministic timeline of worker arrivals, task
//!    postings, departures, and round ticks, consumed round by round by
//!    an [`OnlineEngine::adaptive`] engine;
//! 3. **fold in the unseen** — a worker whose first check-in falls on
//!    the replay day is outside the trained population; the driver
//!    assigns them the next dense id and folds them into the live
//!    influence network ([`OnlineEngine::worker_arrives_new`]) with
//!    their social edges (mapped onto already-known workers) and their
//!    check-in evidence so far, so they earn non-zero influence without
//!    a retrain.
//!
//! Determinism: the stream carries no randomness and the engine's
//! maintenance + scoring are bit-identical at any thread budget, so two
//! replays of the same trace and configuration produce equal
//! [`ReplayReport`]s even at different `--threads` settings
//! (`crates/sim/tests/replay_determinism.rs` pins this in release CI;
//! `bench_replay` measures rounds/s and the fold-in cost).

use crate::event::{EventKind, Outcome};
use crate::online::{
    EngineBuilder, NetworkMode, OnlineEngine, OnlineSummary, PipelineMode, RoundReport,
};
use sc_assign::AlgorithmKind;
use sc_core::{DitaBuilder, DitaConfig};
use sc_datagen::{LoadedDataset, ReplayEvent, ReplayOptions, ReplayStream};
use sc_types::{History, Worker, WorkerId};
use std::collections::HashMap;

/// One replayed round: the engine's report plus the stream bookkeeping
/// of that round. Equality follows [`RoundReport`] (wall time ignored).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayRoundOutcome {
    /// The engine's round report.
    pub report: RoundReport,
    /// Check-in events delivered this round.
    pub checkins: usize,
    /// Workers folded into the live network this round.
    pub fold_ins: usize,
    /// Arrivals rejected this round (no fold-in path).
    pub rejected: usize,
}

/// The outcome of one replayed day. Equality ignores wall-clock fields,
/// mirroring [`RoundReport`]/[`OnlineSummary`], so reports from runs at
/// different thread budgets compare byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// The replayed day index.
    pub day: i64,
    /// Workers in the trained (pre-day) population.
    pub trained_workers: usize,
    /// Check-ins replayed.
    pub checkins: usize,
    /// `(trace id, dense id)` of every worker folded in mid-replay.
    pub folded: Vec<(WorkerId, WorkerId)>,
    /// Per-round outcomes in round order.
    pub rounds: Vec<ReplayRoundOutcome>,
    /// The engine's lifetime summary.
    pub summary: OnlineSummary,
}

impl ReplayReport {
    /// Workers folded in over the whole replay.
    pub fn fold_ins(&self) -> usize {
        self.folded.len()
    }
}

/// A finished replay: the report plus the engine it ran on (live model,
/// grown network, maintained pool) for inspection or continued serving.
#[derive(Debug)]
pub struct ReplayRun {
    /// The per-round and lifetime outcome.
    pub report: ReplayReport,
    /// The engine after the last round.
    pub engine: OnlineEngine<'static>,
}

/// Trains on the trace's past and replays `day` through an adaptive
/// online engine. `config.online` governs per-round pool maintenance;
/// `config.rpo.threads` governs every parallel phase (results are
/// bit-identical at any budget). Errors when the trace has no history
/// before `day` (nothing to train on) or no check-ins on `day`
/// (nothing to replay).
pub fn replay_day(
    data: &LoadedDataset,
    day: i64,
    config: DitaConfig,
    opts: &ReplayOptions,
    algorithm: AlgorithmKind,
) -> sc_types::Result<ReplayRun> {
    let slice = data.training_slice(day)?;
    let stream = ReplayStream::from_dataset(data, day, opts)?;
    let pipeline = DitaBuilder::new()
        .config(config)
        .build(&slice.social, &slice.histories)?;
    let trained_workers = pipeline.model().n_workers();
    let mut engine = EngineBuilder::new()
        .pipeline(PipelineMode::Owned(Box::new(pipeline)))
        .network(NetworkMode::Adaptive(Box::new(slice.social)))
        .config(config.online)
        .build();

    let mut to_dense: HashMap<WorkerId, WorkerId> = slice.to_dense;
    let mut folded: Vec<(WorkerId, WorkerId)> = Vec::new();
    let mut rounds = Vec::with_capacity(stream.n_rounds());

    for round in stream.rounds() {
        let mut checkins = 0usize;
        let mut fold_ins = 0usize;
        let mut rejected = 0usize;
        for event in &round.events {
            match event {
                ReplayEvent::CheckIn {
                    worker,
                    location,
                    at,
                    ..
                } => {
                    checkins += 1;
                    if let Some(&dense) = to_dense.get(worker) {
                        engine.ingest(EventKind::WorkerArrival {
                            worker: Worker::new(dense, *location, opts.radius_km)
                                .with_speed(opts.speed_kmh),
                        });
                    } else {
                        // First sighting of this worker: fold into the
                        // live network with the evidence observed so
                        // far (their check-ins up to now) and their
                        // friendships onto already-known workers.
                        let dense = WorkerId::from(engine.pipeline().model().n_workers());
                        let friends: Vec<WorkerId> = data
                            .social
                            .informs(worker.raw())
                            .iter()
                            .filter_map(|f| to_dense.get(&WorkerId::new(*f)).copied())
                            .collect();
                        let mut evidence = History::new();
                        for r in data.histories.history(*worker).records() {
                            if r.arrived <= *at {
                                let mut rec = r.clone();
                                rec.worker = dense;
                                evidence.push(rec);
                            }
                        }
                        let arrival = Worker::new(dense, *location, opts.radius_km)
                            .with_speed(opts.speed_kmh);
                        match engine.ingest(EventKind::WorkerNew {
                            worker: arrival,
                            friends,
                            history: evidence,
                        }) {
                            Outcome::WorkerFoldedIn => {
                                to_dense.insert(*worker, dense);
                                folded.push((*worker, dense));
                                fold_ins += 1;
                            }
                            Outcome::Rejected(_) => rejected += 1,
                            _ => {}
                        }
                    }
                }
                ReplayEvent::TaskPosted { task, venue } => {
                    engine.ingest(EventKind::TaskArrival {
                        task: task.clone(),
                        venue: *venue,
                    });
                }
                ReplayEvent::Departure { worker, .. } => {
                    if let Some(&dense) = to_dense.get(worker) {
                        engine.ingest(EventKind::WorkerDeparture { worker: dense });
                    }
                }
            }
        }
        let report = engine.run_round(round.now, algorithm);
        rounds.push(ReplayRoundOutcome {
            report,
            checkins,
            fold_ins,
            rejected,
        });
    }

    let summary = engine.summary();
    Ok(ReplayRun {
        report: ReplayReport {
            day,
            trained_workers,
            checkins: stream.n_checkins(),
            folded,
            rounds,
            summary,
        },
        engine,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_influence::RpoParams;
    use sc_types::{CheckIn, HistoryStore, Location, TimeInstant, VenueId};

    /// A 12-worker, two-day trace. Workers 0..=9 are active on day 0;
    /// workers 10 and 11 first appear on day 1 (fold-in candidates),
    /// befriended with trained workers.
    fn trace() -> LoadedDataset {
        let mut store = HistoryStore::default();
        let mut push = |w: u32, v: u32, x: f64, day: i64, hour: i64| {
            store.push(CheckIn::at(
                WorkerId::new(w),
                VenueId::new(v),
                Location::new(x, 0.0),
                TimeInstant::at(day, hour),
                vec![sc_types::CategoryId::new(v % 4)],
            ));
        };
        for w in 0..10u32 {
            for day in 0..2i64 {
                for k in 0..3i64 {
                    let v = w % 5;
                    push(w, v, v as f64, day, 8 + k * 3 + (w as i64 % 3));
                }
            }
        }
        push(10, 2, 2.0, 1, 10);
        push(10, 3, 3.0, 1, 14);
        push(11, 4, 4.0, 1, 12);
        let mut edges: Vec<(u32, u32)> = (0..9).map(|i| (i, i + 1)).collect();
        edges.push((0, 10));
        edges.push((1, 10));
        edges.push((2, 11));
        LoadedDataset::from_parts(edges, store, 3).unwrap()
    }

    fn config(threads: usize) -> DitaConfig {
        DitaConfig {
            n_topics: 4,
            lda_sweeps: 8,
            infer_sweeps: 4,
            rpo: RpoParams {
                max_sets: 3_000,
                threads: sc_influence::Parallelism::Fixed(threads),
                ..Default::default()
            },
            online: sc_core::OnlineConfig {
                round_hours: 1,
                growth_cap: 256,
                eviction_horizon: 4,
                target_sets: 0,
                incremental: true,
            },
            solver: Default::default(),
            seed: 9,
        }
    }

    #[test]
    fn replay_trains_on_the_past_and_folds_in_the_unseen() {
        let data = trace();
        let run = replay_day(
            &data,
            1,
            config(1),
            &ReplayOptions::default(),
            AlgorithmKind::Ia,
        )
        .unwrap();
        let report = &run.report;
        assert_eq!(report.trained_workers, 10);
        assert_eq!(report.fold_ins(), 2, "workers 10 and 11 are unseen");
        assert_eq!(
            report
                .folded
                .iter()
                .map(|&(t, _)| t.raw())
                .collect::<Vec<_>>(),
            vec![10, 11],
            "unseen workers fold in, in first-sighting order"
        );
        // Dense ids continue the trained population.
        assert_eq!(
            report
                .folded
                .iter()
                .map(|&(_, d)| d.raw())
                .collect::<Vec<_>>(),
            vec![10, 11]
        );
        assert_eq!(
            report.summary.published,
            report
                .rounds
                .iter()
                .map(|r| r.report.task_arrivals)
                .sum::<usize>()
        );
        // Conservation holds across the whole replay.
        let s = &report.summary;
        assert_eq!(s.published, s.assigned + s.expired + s.still_open);
        assert!(s.assigned > 0, "a replayed day assigns tasks");
        // The engine's population grew by the fold-ins.
        assert_eq!(run.engine.pipeline().model().n_workers(), 12);
        assert_eq!(run.engine.network().n_workers(), 12);
    }

    #[test]
    fn folded_workers_score_nonzero_influence() {
        let data = trace();
        let run = replay_day(
            &data,
            1,
            config(1),
            &ReplayOptions::default(),
            AlgorithmKind::Ia,
        )
        .unwrap();
        let scorer = run.engine.pipeline().scorer();
        // Score each folded worker against a task at their own venue.
        for &(trace_id, dense) in &run.report.folded {
            let rec = &data.histories.history(trace_id).records()[0];
            let venue = data.venues.iter().find(|v| v.id == rec.venue).unwrap();
            let task = sc_types::Task::with_categories(
                sc_types::TaskId::new(9_999),
                venue.location,
                TimeInstant::at(1, 15),
                sc_types::Duration::hours(3),
                venue.categories.clone(),
            );
            let score = scorer.score(dense, &task);
            assert!(
                score > 0.0,
                "folded worker {} (dense {}) must score non-zero, got {score}",
                trace_id.raw(),
                dense.raw()
            );
        }
    }

    #[test]
    fn replay_errors_without_history_or_checkins() {
        let data = trace();
        assert!(
            replay_day(
                &data,
                0,
                config(1),
                &ReplayOptions::default(),
                AlgorithmKind::Ia
            )
            .is_err(),
            "day 0 has no past to train on"
        );
        assert!(
            replay_day(
                &data,
                7,
                config(1),
                &ReplayOptions::default(),
                AlgorithmKind::Ia
            )
            .is_err(),
            "day 7 has nothing to replay"
        );
    }
}
