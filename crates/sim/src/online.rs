//! The online assignment engine: a live DITA pipeline serving
//! streaming arrivals with bounded per-round pool maintenance.
//!
//! The paper evaluates one batch per day, but its own setup describes
//! an online platform ("a worker is online until the worker is
//! assigned a task"). [`OnlineEngine`] is that deployment mode as a
//! first-class subsystem:
//!
//! * **streaming state** — tasks and workers arrive and depart between
//!   rounds ([`OnlineEngine::task_arrives`],
//!   [`OnlineEngine::worker_arrives`], [`OnlineEngine::worker_departs`]);
//!   unassigned tasks persist until they expire, assigned workers
//!   leave the pool;
//! * **dynamic populations** — an [`OnlineEngine::adaptive`] engine
//!   owns its social network and folds previously-unseen workers into
//!   the live influence model on arrival
//!   ([`OnlineEngine::worker_arrives_new`]): the graph grows, topic and
//!   willingness entries are fitted from the arrival's evidence, and
//!   the RRR pool splices the worker into live sets — so late arrivals
//!   earn **non-zero influence without a retrain**. Engines that cannot
//!   fold in (frozen or fixed-population) reject unknown workers
//!   explicitly ([`ArrivalOutcome::Rejected`]) instead of silently
//!   accepting a worker that would always score zero;
//! * **one expiry pass per round** — arrivals are ingested *before*
//!   the expiry check, so a task that is already stale when the round
//!   opens is counted expired and never offered, exactly like a
//!   carried-over task (the batch simulator historically offered such
//!   tasks in their arrival round);
//! * **bounded maintenance instead of retraining** — each round the
//!   engine advances the RRR pool epoch, evicts at most
//!   `growth_cap` sets older than `eviction_horizon` rounds, and
//!   samples at most `growth_cap` fresh sets back toward the target
//!   ([`OnlineConfig`]). After warm-up the pipeline is never retrained:
//!   maintenance cost per round is `O(growth_cap · avg set size +
//!   live memberships)`, a small fraction of a full RPO build.
//!
//! Determinism: the pool's per-set seeding contract (PR 2) extends to
//! maintenance — eviction retires stream indices permanently and
//! growth continues the stream, so the live pool is a pure function of
//! `(master_seed, stream window)` at **any** thread count. Round
//! reports are therefore identical between `threads = 1` and
//! `threads = N` runs of the same arrival script.
//!
//! Rounds also *scale* with that thread budget: the pipeline the
//! engine owns shards its per-instance scoring passes — eligibility
//! construction, influence-cache warming, the per-pair influence
//! scan — over [`sc_core::DitaPipeline::scoring_threads`] threads
//! (the same `DitaConfig` knob that governed training), so a single
//! streaming round exploits all cores, not just batch sweeps. The
//! sharded passes merge in index order, which is why the bit-identity
//! above survives intra-round parallelism
//! (`crates/sim/tests/round_parallel_determinism.rs` pins it;
//! `bench_round` measures the speedup).
//!
//! Rounds are also *incremental* by default
//! ([`OnlineConfig::incremental`]): the engine carries an
//! [`EligibilityState`] across rounds — eligibility is advanced by a
//! delta from the previous round instead of rebuilt — and scores
//! through the pipeline's persistent content-keyed scorer cache, which
//! only worker fold-ins invalidate. Both reuse paths are exact, so a
//! round's [`RoundReport`] is bit-identical to the `--no-incremental`
//! rebuild baseline at any thread count
//! (`crates/sim/tests/incremental_round_determinism.rs` pins it;
//! `bench_round` measures the steady-state speedup). The report's
//! telemetry fields (`cache_hits`, `elig_*`, the `*_ms` phase split)
//! describe how the round was served and are excluded from equality.

use sc_assign::AlgorithmKind;
use sc_core::{DitaPipeline, EligibilityState, OnlineConfig};
use sc_datagen::SyntheticDataset;
use sc_influence::SocialNetwork;
use sc_types::{Duration, History, Task, TaskId, TimeInstant, VenueId, Worker, WorkerId};
use std::collections::HashMap;
use std::time::Instant;

/// Builds the `id`-th task of a scripted arrival stream: a
/// deterministic venue pick (via [`rand::mix_stream`], the same
/// primitive that seeds RRR sets) and a `phi`-hour task published at
/// `now` from that venue. Shared by the `dita online` CLI driver and
/// the `bench_online` perf binary so their arrival streams cannot
/// silently diverge.
pub fn scripted_arrival(
    data: &SyntheticDataset,
    seed: u64,
    id: u32,
    now: TimeInstant,
    phi: f64,
) -> (Task, VenueId) {
    let pick = rand::mix_stream(seed, id as u64) as usize % data.venues.len();
    let venue = data.venues.venue(VenueId::from(pick));
    (
        Task::with_categories(
            TaskId::new(id),
            venue.location,
            now,
            Duration::hours_f64(phi),
            venue.categories.clone(),
        ),
        venue.id,
    )
}

/// Outcome of one assignment round.
///
/// Equality ignores the wall-clock fields (`maintenance_ms` and the
/// per-phase `*_ms` split) **and** the cache/delta telemetry counters:
/// those describe *how* the round was served (incremental vs rebuild,
/// warm vs cold cache), while equality asserts *what* the round
/// decided — so the determinism suites can compare whole reports
/// across thread counts and across the incremental/rebuild paths.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Round counter (0-based).
    pub round: u64,
    /// The time instance the round was evaluated at.
    pub now: TimeInstant,
    /// Tasks that arrived since the previous round.
    pub task_arrivals: usize,
    /// Workers that arrived since the previous round.
    pub worker_arrivals: usize,
    /// Tasks offered this round (arrived + carried over, post-expiry).
    pub available_tasks: usize,
    /// Workers online when the round was assigned.
    pub online_workers: usize,
    /// Tasks assigned this round.
    pub assigned: usize,
    /// Tasks that expired at this round's open (including arrivals
    /// that were already stale).
    pub expired: usize,
    /// Average influence of this round's assignment.
    pub ai: f64,
    /// Live RRR sets after maintenance.
    pub pool_sets: usize,
    /// Stale sets evicted by this round's maintenance.
    pub sets_evicted: usize,
    /// Fresh sets sampled by this round's maintenance.
    pub sets_added: usize,
    /// Wall time of pool maintenance, milliseconds (excluded from
    /// `PartialEq`).
    pub maintenance_ms: f64, // lint: timing
    /// Eligibility phase wall time (delta apply or full build),
    /// milliseconds (excluded from `PartialEq`).
    pub eligibility_ms: f64, // lint: timing
    /// Scorer-cache warm wall time, milliseconds (excluded).
    pub warm_ms: f64, // lint: timing
    /// Pair-scan wall time, milliseconds (excluded).
    pub score_ms: f64, // lint: timing
    /// Assignment-solve wall time, milliseconds (excluded).
    pub solve_ms: f64, // lint: timing
    /// Distinct task-content keys already warm in the scorer cache
    /// (serving-mode telemetry, excluded from `PartialEq`).
    pub cache_hits: usize,
    /// Distinct task-content keys computed this round (excluded).
    pub cache_misses: usize,
    /// Shortest-path search passes the MCMF solve ran (excluded:
    /// engine-dependent — batching collapses passes — while the
    /// assignment itself is engine-invariant).
    pub solve_passes: usize,
    /// Augmenting paths the MCMF solve committed (excluded, like
    /// `solve_passes`).
    pub solve_augmentations: usize,
    /// Worker rows carried by the eligibility delta (excluded).
    pub elig_rows_carried: usize,
    /// Worker rows rebuilt by the eligibility delta (excluded).
    pub elig_rows_rebuilt: usize,
    /// Pairs reused from the previous round's matrix (excluded).
    pub elig_pairs_carried: usize,
    /// Whether eligibility fell back to a from-scratch build this
    /// round (always `true` on the `--no-incremental` path; excluded).
    pub elig_full_rebuild: bool,
}

impl PartialEq for RoundReport {
    fn eq(&self, other: &Self) -> bool {
        self.round == other.round
            && self.now == other.now
            && self.task_arrivals == other.task_arrivals
            && self.worker_arrivals == other.worker_arrivals
            && self.available_tasks == other.available_tasks
            && self.online_workers == other.online_workers
            && self.assigned == other.assigned
            && self.expired == other.expired
            && self.ai == other.ai
            && self.pool_sets == other.pool_sets
            && self.sets_evicted == other.sets_evicted
            && self.sets_added == other.sets_added
        // Wall-clock (`*_ms`) and serving-mode telemetry (cache hit
        // counts, eligibility delta shape) are run conditions, not
        // results: incremental and rebuild runs of the same script
        // must compare equal.
    }
}

/// Totals of an engine's lifetime, with the conservation invariant
/// `published == assigned + expired + still_open`.
///
/// Equality ignores the wall-clock field (`maintenance_ms`), mirroring
/// [`RoundReport`], so summaries of two runs of the same arrival
/// script compare equal across thread counts.
#[derive(Debug, Clone)]
pub struct OnlineSummary {
    /// Rounds executed.
    pub rounds: u64,
    /// Tasks that ever arrived.
    pub published: usize,
    /// Tasks assigned across all rounds.
    pub assigned: usize,
    /// Tasks that expired unassigned.
    pub expired: usize,
    /// Tasks still open (arrived, neither assigned nor expired).
    pub still_open: usize,
    /// Mean influence over every assignment made.
    pub average_influence: f64,
    /// Total fresh sets sampled by maintenance.
    pub sets_added: usize,
    /// Total stale sets evicted by maintenance.
    pub sets_evicted: usize,
    /// Total pool-maintenance wall time, milliseconds.
    pub maintenance_ms: f64,
}

impl PartialEq for OnlineSummary {
    fn eq(&self, other: &Self) -> bool {
        self.rounds == other.rounds
            && self.published == other.published
            && self.assigned == other.assigned
            && self.expired == other.expired
            && self.still_open == other.still_open
            && self.average_influence == other.average_influence
            && self.sets_added == other.sets_added
            && self.sets_evicted == other.sets_evicted
        // maintenance_ms is a run condition, not a result.
    }
}

impl OnlineSummary {
    /// Fraction of published tasks that were assigned.
    pub fn assignment_rate(&self) -> f64 {
        if self.published == 0 {
            0.0
        } else {
            self.assigned as f64 / self.published as f64
        }
    }
}

/// How the engine holds its pipeline: owned (live, maintainable) or
/// borrowed (frozen — zero-copy for drivers that never rotate the
/// pool, like [`crate::platform::simulate_day`]).
#[derive(Debug)]
enum PipelineHandle<'a> {
    /// Boxed: the pipeline struct is large and the borrowed variant is
    /// one pointer (clippy::large_enum_variant).
    Owned(Box<DitaPipeline>),
    Borrowed(&'a DitaPipeline),
}

impl PipelineHandle<'_> {
    fn get(&self) -> &DitaPipeline {
        match self {
            PipelineHandle::Owned(p) => p,
            PipelineHandle::Borrowed(p) => p,
        }
    }
}

/// How the engine holds the social network: owned (growable — worker
/// fold-in replaces it with the extended network) or borrowed
/// (fixed-population drivers).
#[derive(Debug)]
enum NetworkHandle<'a> {
    Owned(Box<SocialNetwork>),
    Borrowed(&'a SocialNetwork),
}

impl NetworkHandle<'_> {
    fn get(&self) -> &SocialNetwork {
        match self {
            NetworkHandle::Owned(n) => n,
            NetworkHandle::Borrowed(n) => n,
        }
    }
}

/// What happened to an arriving worker — the explicit contract that
/// replaces the old silent acceptance of workers the trained model
/// cannot score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalOutcome {
    /// Newly online; the trained influence network knows the worker.
    Joined,
    /// Was already online; state (location, radius) refreshed in place.
    Refreshed,
    /// Outside the trained population; folded into the live influence
    /// network ([`OnlineEngine::worker_arrives_new`]) — the worker
    /// scores non-zero influence from this round on.
    FoldedIn,
    /// Outside the trained population and this engine cannot fold in
    /// (frozen/borrowed, or no social evidence was provided): the
    /// worker is **not** admitted. Admitting them would only ever
    /// produce zero-influence assignments — the silent-dead-worker trap
    /// this variant closes.
    Rejected,
}

impl ArrivalOutcome {
    /// Whether the worker is online after the call.
    pub fn is_online(self) -> bool {
        !matches!(self, ArrivalOutcome::Rejected)
    }

    /// Whether the call added a worker that was not online before.
    pub fn is_new(self) -> bool {
        matches!(self, ArrivalOutcome::Joined | ArrivalOutcome::FoldedIn)
    }
}

/// A stateful online assignment engine owning a live [`DitaPipeline`].
///
/// Create it from a trained pipeline and the social network it was
/// trained on, feed arrivals, and call [`OnlineEngine::run_round`] at
/// each time instance. See the module docs for the maintenance and
/// determinism contracts. Drivers that never maintain the pool can
/// borrow the pipeline instead via [`OnlineEngine::frozen`].
#[derive(Debug)]
pub struct OnlineEngine<'a> {
    pipeline: PipelineHandle<'a>,
    net: NetworkHandle<'a>,
    config: OnlineConfig,
    /// Live-set target maintenance holds the pool at.
    target_sets: usize,
    open: Vec<(Task, VenueId)>,
    workers: Vec<Worker>,
    /// `WorkerId` → index in `workers`: O(1) duplicate screening on
    /// arrival. Rebuilt after the (already linear) removal passes.
    online_index: HashMap<WorkerId, usize>,
    round: u64,
    /// Carried eligibility CSR + fingerprints for the incremental
    /// round path ([`OnlineConfig::incremental`]); unused (left
    /// unprimed) when running rebuild rounds.
    elig: EligibilityState,
    pending_tasks: usize,
    pending_workers: usize,
    published: usize,
    assigned_total: usize,
    expired_total: usize,
    influence_sum: f64,
    sets_added_total: usize,
    sets_evicted_total: usize,
    maintenance_ms_total: f64,
}

impl<'a> OnlineEngine<'a> {
    /// Wraps a trained pipeline into an engine. The maintenance knobs
    /// come from the pipeline's [`OnlineConfig`]
    /// (`pipeline.model().config().online`); `net` must be the social
    /// network the pipeline was trained on.
    pub fn new(pipeline: DitaPipeline, net: &'a SocialNetwork) -> Self {
        let config = pipeline.model().config().online;
        Self::with_config(pipeline, net, config)
    }

    /// Like [`OnlineEngine::new`] with an explicit maintenance
    /// configuration (overrides the one trained into the pipeline).
    pub fn with_config(
        pipeline: DitaPipeline,
        net: &'a SocialNetwork,
        config: OnlineConfig,
    ) -> Self {
        Self::build(
            PipelineHandle::Owned(Box::new(pipeline)),
            NetworkHandle::Borrowed(net),
            config,
        )
    }

    /// An engine that owns both its pipeline *and* its social network —
    /// the dynamic-population mode. Only this construction can fold
    /// previously-unseen workers into the live influence network
    /// ([`OnlineEngine::worker_arrives_new`]); the replay driver
    /// (`crate::replay`) uses it to serve real traces where workers
    /// appear mid-stream.
    pub fn adaptive(
        pipeline: DitaPipeline,
        net: SocialNetwork,
        config: OnlineConfig,
    ) -> OnlineEngine<'static> {
        OnlineEngine::build(
            PipelineHandle::Owned(Box::new(pipeline)),
            NetworkHandle::Owned(Box::new(net)),
            config,
        )
    }

    /// A zero-copy engine borrowing a frozen pipeline: streaming state
    /// and round accounting without pool maintenance (the
    /// configuration is forced to the non-maintaining
    /// [`OnlineConfig::default`]). This is the
    /// [`crate::platform::simulate_day`] path — the paper's
    /// trained-once setting over online dynamics.
    pub fn frozen(pipeline: &'a DitaPipeline, net: &'a SocialNetwork) -> Self {
        Self::build(
            PipelineHandle::Borrowed(pipeline),
            NetworkHandle::Borrowed(net),
            OnlineConfig::default(),
        )
    }

    fn build(pipeline: PipelineHandle<'a>, net: NetworkHandle<'a>, config: OnlineConfig) -> Self {
        debug_assert_eq!(
            net.get().n_workers(),
            pipeline.get().model().pool().n_workers(),
            "engine network must match the trained pool"
        );
        debug_assert!(
            !config.maintains_pool() || matches!(pipeline, PipelineHandle::Owned(_)),
            "a maintaining engine must own its pipeline"
        );
        let trained = pipeline.get().model().pool().n_sets();
        let target_sets = if config.target_sets == 0 {
            trained
        } else {
            config.target_sets
        };
        OnlineEngine {
            pipeline,
            net,
            config,
            target_sets,
            open: Vec::new(),
            workers: Vec::new(),
            online_index: HashMap::new(),
            round: 0,
            elig: EligibilityState::new(),
            pending_tasks: 0,
            pending_workers: 0,
            published: 0,
            assigned_total: 0,
            expired_total: 0,
            influence_sum: 0.0,
            sets_added_total: 0,
            sets_evicted_total: 0,
            maintenance_ms_total: 0.0,
        }
    }

    /// Queues a task arrival for the next round. The task is offered
    /// from the next round on, unless it is already expired at that
    /// round's instant — then it is counted expired without ever being
    /// offered. Returns `true` if the task is newly published;
    /// re-arrival of an id that is still open refreshes that entry in
    /// place instead of duplicating it (a duplicated id would corrupt
    /// the `published == assigned + expired + still_open` invariant,
    /// because assignment and closing key tasks by id). The open list
    /// is transient and small (bounded by arrival rate × φ), so the
    /// screening scan is cheap.
    pub fn task_arrives(&mut self, task: Task, venue: VenueId) -> bool {
        if let Some(entry) = self.open.iter_mut().find(|(t, _)| t.id == task.id) {
            *entry = (task, venue);
            return false;
        }
        self.open.push((task, venue));
        self.pending_tasks += 1;
        self.published += 1;
        true
    }

    /// Queues a worker arrival (online from the next round on).
    ///
    /// Re-arrival of an already-online id refreshes that worker's state
    /// (location, radius) in place instead of duplicating it —
    /// multi-day drivers re-sample cohorts from one population, and a
    /// duplicated id would let one worker be assigned twice in a round.
    ///
    /// A worker **outside the trained population** is
    /// [`ArrivalOutcome::Rejected`]: the model cannot score them, so
    /// admitting them could only ever produce zero-influence
    /// assignments (the silent trap this contract closes). Late
    /// arrivals with social evidence go through
    /// [`OnlineEngine::worker_arrives_new`] instead, which folds them
    /// into the live network so they earn real influence.
    pub fn worker_arrives(&mut self, worker: Worker) -> ArrivalOutcome {
        if worker.id.index() >= self.pipeline.get().model().n_workers() {
            return ArrivalOutcome::Rejected;
        }
        if let Some(&idx) = self.online_index.get(&worker.id) {
            self.workers[idx] = worker;
            return ArrivalOutcome::Refreshed;
        }
        self.online_index.insert(worker.id, self.workers.len());
        self.workers.push(worker);
        self.pending_workers += 1;
        ArrivalOutcome::Joined
    }

    /// Arrival of a worker the trained model has **never seen**, with
    /// their social evidence: `friends` are trained worker ids the
    /// arrival is befriended with, `history` is whatever check-in
    /// evidence exists so far (often a single record).
    ///
    /// On an [`OnlineEngine::adaptive`] engine the worker is folded
    /// into the live influence network without a retrain — the social
    /// graph grows ([`SocialNetwork::fold_in_worker`]), the model gains
    /// topic/willingness entries, and the RRR pool splices the worker
    /// into live sets (`sc_core::InfluenceModel::fold_in_worker`) — so
    /// the arrival scores non-zero influence from the next round on.
    /// The worker's id must be the next dense id
    /// (`pipeline().model().n_workers()`); a known id degrades to the
    /// plain [`OnlineEngine::worker_arrives`] path.
    ///
    /// Engines that borrow their pipeline or network (the frozen /
    /// fixed-population constructions) return
    /// [`ArrivalOutcome::Rejected`] — explicitly, instead of silently
    /// accepting a worker that would always score zero. So does an
    /// arrival with **no usable friendships** (none of `friends` is in
    /// the current population): with zero social edges the fold-in
    /// could never join an RRR set, and the worker would be exactly the
    /// zero-influence admission this contract exists to prevent. Such a
    /// worker can simply re-arrive later, once a friend of theirs has
    /// been folded in.
    pub fn worker_arrives_new(
        &mut self,
        worker: Worker,
        friends: &[WorkerId],
        history: &History,
    ) -> ArrivalOutcome {
        let population = self.pipeline.get().model().n_workers();
        if worker.id.index() < population {
            return self.worker_arrives(worker);
        }
        let (PipelineHandle::Owned(pipeline), NetworkHandle::Owned(net)) =
            (&mut self.pipeline, &mut self.net)
        else {
            return ArrivalOutcome::Rejected;
        };
        if worker.id.index() != population {
            // Fold-ins assign dense ids in arrival order; a gap means
            // the caller skipped an arrival.
            return ArrivalOutcome::Rejected;
        }
        let raw: Vec<u32> = friends
            .iter()
            .filter(|f| f.index() < population)
            .map(|f| f.raw())
            .collect();
        if raw.is_empty() {
            return ArrivalOutcome::Rejected;
        }
        **net = net.fold_in_worker(&raw);
        pipeline.model_mut().fold_in_worker(net, history);
        self.online_index.insert(worker.id, self.workers.len());
        self.workers.push(worker);
        self.pending_workers += 1;
        ArrivalOutcome::FoldedIn
    }

    /// Removes an online worker (e.g. the worker logs off). Returns
    /// whether the worker was online.
    pub fn worker_departs(&mut self, id: WorkerId) -> bool {
        if !self.online_index.contains_key(&id) {
            return false;
        }
        // Order-preserving removal keeps the assignment input (and so
        // any tie-breaking) deterministic; the index is rebuilt by the
        // same linear pass.
        self.workers.retain(|w| w.id != id);
        self.reindex_workers();
        true
    }

    /// Rebuilds the id→index map after an order-preserving removal.
    fn reindex_workers(&mut self) {
        self.online_index = self
            .workers
            .iter()
            .enumerate()
            .map(|(i, w)| (w.id, i))
            .collect();
    }

    /// Runs one assignment round at time `now`: expiry, bounded pool
    /// maintenance, assignment, retirement of matched workers/tasks.
    pub fn run_round(&mut self, now: TimeInstant, algorithm: AlgorithmKind) -> RoundReport {
        let task_arrivals = std::mem::take(&mut self.pending_tasks);
        let worker_arrivals = std::mem::take(&mut self.pending_workers);

        // One expiry pass over arrivals *and* carried tasks: a task is
        // offered iff it is alive at `now`, no matter when it arrived.
        let before = self.open.len();
        self.open.retain(|(t, _)| !t.is_expired_at(now));
        let expired = before - self.open.len();
        self.expired_total += expired;

        let (sets_evicted, sets_added, maintenance_ms) = self.maintain();

        let tasks: Vec<Task> = self.open.iter().map(|(t, _)| t.clone()).collect();
        let venues: Vec<VenueId> = self.open.iter().map(|(_, v)| *v).collect();
        let available_tasks = tasks.len();
        let online_workers = self.workers.len();
        let instance = sc_types::Instance::new(now, self.workers.clone(), tasks);
        let elig = if self.config.incremental {
            Some(&mut self.elig)
        } else {
            None
        };
        let (assignment, perf) = self
            .pipeline
            .get()
            .assign_round(&instance, &venues, algorithm, elig);

        let assigned = assignment.len();
        let ai = assignment.average_influence();
        self.assigned_total += assigned;
        self.influence_sum += assignment.total_influence();

        // Assigned workers leave the platform; assigned tasks close.
        let assigned_workers: std::collections::HashSet<WorkerId> =
            assignment.pairs().iter().map(|p| p.worker).collect();
        let assigned_tasks: std::collections::HashSet<sc_types::TaskId> =
            assignment.pairs().iter().map(|p| p.task).collect();
        if !assigned_workers.is_empty() {
            self.workers.retain(|w| !assigned_workers.contains(&w.id));
            self.reindex_workers();
        }
        self.open.retain(|(t, _)| !assigned_tasks.contains(&t.id));

        let report = RoundReport {
            round: self.round,
            now,
            task_arrivals,
            worker_arrivals,
            available_tasks,
            online_workers,
            assigned,
            expired,
            ai,
            pool_sets: self.pipeline.get().model().pool().n_sets(),
            sets_evicted,
            sets_added,
            maintenance_ms,
            eligibility_ms: perf.eligibility_ms,
            warm_ms: perf.warm_ms,
            score_ms: perf.score_ms,
            solve_ms: perf.solve_ms,
            cache_hits: perf.cache_hits,
            cache_misses: perf.cache_misses,
            solve_passes: perf.solve_passes,
            solve_augmentations: perf.solve_augmentations,
            elig_rows_carried: perf.delta.rows_carried,
            elig_rows_rebuilt: perf.delta.rows_rebuilt,
            elig_pairs_carried: perf.delta.pairs_carried,
            elig_full_rebuild: perf.delta.full_rebuild,
        };
        self.round += 1;
        report
    }

    /// One bounded maintenance step: advance the pool epoch, evict at
    /// most `growth_cap` sets that fell behind the horizon, sample at
    /// most `growth_cap` fresh sets back toward the target.
    fn maintain(&mut self) -> (usize, usize, f64) {
        if !self.config.maintains_pool() {
            return (0, 0, 0.0);
        }
        let t0 = Instant::now();
        let quantum = self.config.growth_cap;
        let horizon = self.config.eviction_horizon;
        let net = self.net.get();
        let (pool, threads) = match &mut self.pipeline {
            PipelineHandle::Owned(p) => {
                // Resolved per round, not cached at construction, so a
                // live re-budget (`pipeline_mut().set_threads(..)`)
                // reaches maintenance top-ups too — one knob governs
                // scoring *and* maintenance at all times.
                let threads = p.scoring_threads();
                (p.model_mut().pool_mut(), threads)
            }
            // Unreachable: `frozen` forces a non-maintaining config.
            PipelineHandle::Borrowed(_) => return (0, 0, 0.0),
        };

        let epoch = pool.advance_epoch();
        let evicted = if horizon > 0 && epoch > horizon {
            pool.evict_before_epoch(epoch - horizon, quantum)
        } else {
            0
        };
        let live = pool.n_sets();
        let target = self.target_sets.min(live + quantum);
        let added = target.saturating_sub(live);
        if added > 0 {
            pool.extend_to(net, target, threads);
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        self.sets_evicted_total += evicted;
        self.sets_added_total += added;
        self.maintenance_ms_total += ms;
        (evicted, added, ms)
    }

    /// The live pipeline.
    pub fn pipeline(&self) -> &DitaPipeline {
        self.pipeline.get()
    }

    /// The social network the engine maintains the pool against. On an
    /// [`OnlineEngine::adaptive`] engine this grows with every
    /// fold-in; otherwise it is the trained network.
    pub fn network(&self) -> &SocialNetwork {
        self.net.get()
    }

    /// Mutable access to the live pipeline — used by the
    /// retrain-every-round oracle in `bench_online`; normal drivers
    /// never need it.
    ///
    /// # Panics
    /// On a borrowed-pipeline engine ([`OnlineEngine::frozen`]), which
    /// by construction never mutates its pipeline.
    pub fn pipeline_mut(&mut self) -> &mut DitaPipeline {
        match &mut self.pipeline {
            PipelineHandle::Owned(p) => p,
            PipelineHandle::Borrowed(_) => {
                panic!("a frozen (borrowed-pipeline) engine cannot be mutated")
            }
        }
    }

    /// Consumes the engine, returning the (maintained) pipeline. A
    /// borrowed-pipeline engine returns a clone of the frozen original.
    pub fn into_pipeline(self) -> DitaPipeline {
        match self.pipeline {
            PipelineHandle::Owned(p) => *p,
            PipelineHandle::Borrowed(p) => p.clone(),
        }
    }

    /// The maintenance configuration in effect.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// Tasks currently open (arrived, unexpired, unassigned — plus
    /// arrivals not yet screened by a round).
    pub fn open_tasks(&self) -> usize {
        self.open.len()
    }

    /// Workers currently online.
    pub fn online_workers(&self) -> usize {
        self.workers.len()
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Lifetime totals (see [`OnlineSummary`] for the invariant).
    pub fn summary(&self) -> OnlineSummary {
        OnlineSummary {
            rounds: self.round,
            published: self.published,
            assigned: self.assigned_total,
            expired: self.expired_total,
            still_open: self.open.len(),
            average_influence: if self.assigned_total == 0 {
                0.0
            } else {
                self.influence_sum / self.assigned_total as f64
            },
            sets_added: self.sets_added_total,
            sets_evicted: self.sets_evicted_total,
            maintenance_ms: self.maintenance_ms_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::{DitaBuilder, DitaConfig};
    use sc_datagen::{DatasetProfile, InstanceOptions, SyntheticDataset};
    use sc_influence::RpoParams;
    use sc_types::Duration;

    fn setup(online: OnlineConfig) -> (SyntheticDataset, DitaPipeline) {
        let mut profile = DatasetProfile::brightkite_small();
        profile.n_workers = 100;
        profile.n_venues = 100;
        profile.checkins_per_worker = 10;
        let dataset = SyntheticDataset::generate(&profile, 4);
        let pipeline = DitaBuilder::new()
            .config(DitaConfig {
                n_topics: 5,
                lda_sweeps: 10,
                infer_sweeps: 5,
                rpo: RpoParams {
                    max_sets: 3_000,
                    ..Default::default()
                },
                online,
                solver: Default::default(),
                seed: 2,
            })
            .build(&dataset.social, &dataset.histories)
            .unwrap();
        (dataset, pipeline)
    }

    fn feed_workers(engine: &mut OnlineEngine<'_>, dataset: &SyntheticDataset, n: usize) {
        let base = dataset.instance_for_day(0, 0, n, InstanceOptions::default());
        for w in base.instance.workers {
            engine.worker_arrives(w);
        }
    }

    fn hourly_task(
        dataset: &SyntheticDataset,
        id: u32,
        now: TimeInstant,
        phi: f64,
    ) -> (Task, VenueId) {
        let venue = dataset.venues.venue(sc_types::VenueId::from(
            (id as usize * 7) % dataset.venues.len(),
        ));
        (
            Task::with_categories(
                sc_types::TaskId::new(id),
                venue.location,
                now,
                Duration::hours_f64(phi),
                venue.categories.clone(),
            ),
            venue.id,
        )
    }

    #[test]
    fn frozen_config_never_touches_the_pool() {
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let fp = pipeline.model().pool().fingerprint();
        let mut engine = OnlineEngine::new(pipeline, &dataset.social);
        feed_workers(&mut engine, &dataset, 40);
        for hour in 8..14 {
            let now = TimeInstant::at(0, hour);
            for i in 0..8u32 {
                let (t, v) = hourly_task(&dataset, hour as u32 * 100 + i, now, 3.0);
                engine.task_arrives(t, v);
            }
            let r = engine.run_round(now, AlgorithmKind::Ia);
            assert_eq!(r.sets_added, 0);
            assert_eq!(r.sets_evicted, 0);
        }
        assert_eq!(engine.pipeline().model().pool().fingerprint(), fp);
        let s = engine.summary();
        assert_eq!(s.published, s.assigned + s.expired + s.still_open);
        assert!(s.assigned > 0);
    }

    #[test]
    fn maintenance_is_bounded_per_round_and_rotates() {
        let online = OnlineConfig {
            round_hours: 1,
            growth_cap: 256,
            eviction_horizon: 2,
            target_sets: 0,
            incremental: true,
        };
        let (dataset, pipeline) = setup(online);
        let trained = pipeline.model().pool().n_sets();
        let mut engine = OnlineEngine::new(pipeline, &dataset.social);
        feed_workers(&mut engine, &dataset, 30);
        let mut evicted_any = false;
        for hour in 0..10 {
            let now = TimeInstant::at(0, hour);
            let (t, v) = hourly_task(&dataset, hour as u32, now, 4.0);
            engine.task_arrives(t, v);
            let r = engine.run_round(now, AlgorithmKind::Ia);
            assert!(r.sets_added <= 256, "growth cap violated: {}", r.sets_added);
            assert!(
                r.sets_evicted <= 256,
                "eviction cap violated: {}",
                r.sets_evicted
            );
            assert!(r.pool_sets <= trained);
            evicted_any |= r.sets_evicted > 0;
        }
        assert!(evicted_any, "horizon 2 must rotate stale sets out");
        assert!(
            engine.pipeline().model().pool().stream_base() > 0,
            "rotation retires stream indices"
        );
        let s = engine.summary();
        assert_eq!(s.sets_added, s.sets_evicted, "steady state at the target");
    }

    #[test]
    fn stale_arrival_is_expired_not_offered() {
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let mut engine = OnlineEngine::new(pipeline, &dataset.social);
        feed_workers(&mut engine, &dataset, 20);
        // Arrived long before the round instant, already expired.
        let (stale, v) = hourly_task(&dataset, 0, TimeInstant::at(0, 1), 1.0);
        engine.task_arrives(stale, v);
        // Alive control task.
        let now = TimeInstant::at(0, 9);
        let (alive, v2) = hourly_task(&dataset, 1, now, 3.0);
        engine.task_arrives(alive, v2);
        let r = engine.run_round(now, AlgorithmKind::Ia);
        assert_eq!(r.task_arrivals, 2);
        assert_eq!(r.expired, 1, "stale arrival expires at the round open");
        assert_eq!(r.available_tasks, 1, "stale arrival is never offered");
        let s = engine.summary();
        assert_eq!(s.published, 2);
        assert_eq!(s.published, s.assigned + s.expired + s.still_open);
    }

    #[test]
    fn workers_depart_and_assigned_workers_leave() {
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let mut engine = OnlineEngine::new(pipeline, &dataset.social);
        feed_workers(&mut engine, &dataset, 10);
        assert_eq!(engine.online_workers(), 10);
        let departing = WorkerId::new(0);
        let went = engine.worker_departs(departing);
        // The sampled instance may or may not include worker 0; if it
        // did, the pool shrinks.
        assert_eq!(engine.online_workers(), if went { 9 } else { 10 });
        let before = engine.online_workers();
        let now = TimeInstant::at(0, 9);
        for i in 0..20u32 {
            let (t, v) = hourly_task(&dataset, i, now, 5.0);
            engine.task_arrives(t, v);
        }
        let r = engine.run_round(now, AlgorithmKind::Mta);
        assert!(r.assigned > 0);
        assert_eq!(engine.online_workers(), before - r.assigned);
    }

    #[test]
    fn rearriving_worker_is_refreshed_not_duplicated() {
        // Multi-day drivers re-sample cohorts from one population: a
        // carried-over worker re-sampled the next morning must not be
        // duplicated (a duplicated id could be assigned two tasks in
        // one round).
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let mut engine = OnlineEngine::new(pipeline, &dataset.social);
        feed_workers(&mut engine, &dataset, 15);
        let n = engine.online_workers();
        // Day-2 cohort drawn from the same population overlaps day 1's.
        let day2 = dataset.instance_for_day(0, 0, 15, InstanceOptions::default());
        for w in day2.instance.workers {
            assert_eq!(
                engine.worker_arrives(w),
                ArrivalOutcome::Refreshed,
                "same cohort: every id re-arrives"
            );
        }
        assert_eq!(engine.online_workers(), n, "no duplicates added");
        let now = TimeInstant::at(0, 9);
        for i in 0..30u32 {
            let (t, v) = hourly_task(&dataset, i, now, 5.0);
            engine.task_arrives(t, v);
        }
        let r = engine.run_round(now, AlgorithmKind::Mta);
        assert!(
            r.assigned <= n,
            "each distinct worker serves at most one task"
        );
    }

    #[test]
    fn rearriving_open_task_is_refreshed_not_duplicated() {
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let mut engine = OnlineEngine::new(pipeline, &dataset.social);
        feed_workers(&mut engine, &dataset, 20);
        let now = TimeInstant::at(0, 9);
        let (t, v) = hourly_task(&dataset, 7, now, 4.0);
        assert!(engine.task_arrives(t.clone(), v));
        assert!(
            !engine.task_arrives(t, v),
            "same open id refreshes in place"
        );
        assert_eq!(engine.open_tasks(), 1);
        let r = engine.run_round(now, AlgorithmKind::Ia);
        assert_eq!(r.task_arrivals, 1);
        let s = engine.summary();
        assert_eq!(s.published, 1, "a refreshed task is published once");
        assert_eq!(s.published, s.assigned + s.expired + s.still_open);
    }

    #[test]
    fn frozen_engine_borrows_without_cloning() {
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let fp = pipeline.model().pool().fingerprint();
        let mut engine = OnlineEngine::frozen(&pipeline, &dataset.social);
        feed_workers(&mut engine, &dataset, 20);
        let now = TimeInstant::at(0, 10);
        for i in 0..10u32 {
            let (t, v) = hourly_task(&dataset, i, now, 3.0);
            engine.task_arrives(t, v);
        }
        let r = engine.run_round(now, AlgorithmKind::Ia);
        assert!(r.assigned > 0);
        assert_eq!(
            r.sets_added + r.sets_evicted,
            0,
            "frozen engines never maintain"
        );
        // The borrowed original is untouched and still usable.
        drop(engine);
        assert_eq!(pipeline.model().pool().fingerprint(), fp);
    }

    #[test]
    #[should_panic(expected = "frozen (borrowed-pipeline) engine")]
    fn frozen_engine_rejects_mutation() {
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let mut engine = OnlineEngine::frozen(&pipeline, &dataset.social);
        let _ = engine.pipeline_mut();
    }

    #[test]
    fn unknown_workers_are_rejected_not_silently_accepted() {
        // The zero-influence trap: a worker outside the trained
        // population can never score, so both the frozen and the
        // fixed-population engines must refuse the arrival explicitly.
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let ghost = Worker::new(WorkerId::new(10_000), sc_types::Location::ORIGIN, 25.0);

        let mut frozen = OnlineEngine::frozen(&pipeline, &dataset.social);
        assert_eq!(
            frozen.worker_arrives(ghost.clone()),
            ArrivalOutcome::Rejected
        );
        assert_eq!(
            frozen.worker_arrives_new(ghost.clone(), &[WorkerId::new(0)], &History::new()),
            ArrivalOutcome::Rejected,
            "a frozen engine cannot fold in"
        );
        assert_eq!(frozen.online_workers(), 0);

        let mut owned = OnlineEngine::new(pipeline, &dataset.social);
        assert_eq!(owned.worker_arrives(ghost), ArrivalOutcome::Rejected);
        assert_eq!(owned.online_workers(), 0);
    }

    #[test]
    fn friendless_fold_in_is_rejected_on_adaptive_engines() {
        // No usable friendships means the fold-in could never join an
        // RRR set — admitting the worker would re-open the
        // zero-influence trap. They can re-arrive once a friend exists.
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let trained = pipeline.model().n_workers();
        let mut engine =
            OnlineEngine::adaptive(pipeline, dataset.social.clone(), OnlineConfig::default());
        let late = Worker::new(WorkerId::from(trained), sc_types::Location::ORIGIN, 25.0);
        assert_eq!(
            engine.worker_arrives_new(late.clone(), &[], &History::new()),
            ArrivalOutcome::Rejected,
            "no friends at all"
        );
        assert_eq!(
            engine.worker_arrives_new(
                late.clone(),
                &[WorkerId::from(trained + 3)],
                &History::new()
            ),
            ArrivalOutcome::Rejected,
            "friends outside the population are unusable"
        );
        assert_eq!(engine.online_workers(), 0);
        assert_eq!(
            engine.pipeline().model().n_workers(),
            trained,
            "nothing folded"
        );
        // With one real friend the same arrival folds in.
        assert_eq!(
            engine.worker_arrives_new(late, &[WorkerId::new(0)], &History::new()),
            ArrivalOutcome::FoldedIn
        );
    }

    #[test]
    fn adaptive_engine_folds_in_late_arrival_with_nonzero_influence() {
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let trained = pipeline.model().n_workers();
        let trained_sets = pipeline.model().pool().n_sets();
        let mut engine =
            OnlineEngine::adaptive(pipeline, dataset.social.clone(), OnlineConfig::default());
        feed_workers(&mut engine, &dataset, 30);

        // The arrival: checked in once at venue 0, friends with two
        // trained workers.
        let venue = dataset.venues.venue(sc_types::VenueId::new(0));
        let mut hist = History::new();
        hist.push(sc_types::CheckIn::at(
            WorkerId::from(trained),
            venue.id,
            venue.location,
            TimeInstant::at(0, 8),
            venue.categories.clone(),
        ));
        let late = Worker::new(WorkerId::from(trained), venue.location, 25.0);
        let friends = [WorkerId::new(0), WorkerId::new(1), WorkerId::new(2)];
        assert_eq!(
            engine.worker_arrives_new(late, &friends, &hist),
            ArrivalOutcome::FoldedIn
        );
        assert_eq!(engine.pipeline().model().n_workers(), trained + 1);
        assert_eq!(engine.network().n_workers(), trained + 1);
        assert_eq!(
            engine.pipeline().model().pool().n_sets(),
            trained_sets,
            "fold-in never resamples"
        );

        // The folded worker scores non-zero influence on a task at its
        // own venue — every factor of the product is live.
        let (task, _) = hourly_task(&dataset, 0, TimeInstant::at(0, 9), 4.0);
        let task = Task::with_categories(
            task.id,
            venue.location,
            task.published,
            task.valid_for,
            venue.categories.clone(),
        );
        let score = engine
            .pipeline()
            .scorer()
            .score(WorkerId::from(trained), &task);
        assert!(
            score > 0.0,
            "a folded-in late arrival must earn non-zero influence, got {score}"
        );

        // And a second unseen id must arrive densely: skipping one is
        // rejected.
        let skipper = Worker::new(WorkerId::from(trained + 5), venue.location, 25.0);
        assert_eq!(
            engine.worker_arrives_new(skipper, &friends, &hist),
            ArrivalOutcome::Rejected
        );
    }

    #[test]
    fn folded_worker_participates_in_rounds_and_maintenance() {
        // Fold-in composes with bounded rotation: maintenance keeps
        // extending the pool against the *grown* network.
        let online = OnlineConfig {
            round_hours: 1,
            growth_cap: 256,
            eviction_horizon: 2,
            target_sets: 0,
            incremental: true,
        };
        let (dataset, pipeline) = setup(online);
        let trained = pipeline.model().n_workers();
        let mut engine = OnlineEngine::adaptive(pipeline, dataset.social.clone(), online);
        feed_workers(&mut engine, &dataset, 20);
        let venue = dataset.venues.venue(sc_types::VenueId::new(3));
        let mut hist = History::new();
        hist.push(sc_types::CheckIn::at(
            WorkerId::from(trained),
            venue.id,
            venue.location,
            TimeInstant::at(0, 8),
            venue.categories.clone(),
        ));
        let late = Worker::new(WorkerId::from(trained), venue.location, 25.0);
        assert!(engine
            .worker_arrives_new(late, &[WorkerId::new(0)], &hist)
            .is_online());
        for hour in 9..14 {
            let now = TimeInstant::at(0, hour);
            for i in 0..6u32 {
                let (t, v) = hourly_task(&dataset, hour as u32 * 10 + i, now, 4.0);
                engine.task_arrives(t, v);
            }
            let r = engine.run_round(now, AlgorithmKind::Ia);
            assert!(r.sets_added <= 256);
        }
        let s = engine.summary();
        assert!(s.assigned > 0);
        assert_eq!(s.published, s.assigned + s.expired + s.still_open);
    }

    #[test]
    fn summary_average_influence_is_assignment_weighted() {
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let mut engine = OnlineEngine::new(pipeline, &dataset.social);
        feed_workers(&mut engine, &dataset, 50);
        let mut influence = 0.0;
        let mut assigned = 0usize;
        for hour in 8..12 {
            let now = TimeInstant::at(0, hour);
            for i in 0..10u32 {
                let (t, v) = hourly_task(&dataset, hour as u32 * 50 + i, now, 2.0);
                engine.task_arrives(t, v);
            }
            let r = engine.run_round(now, AlgorithmKind::Ia);
            influence += r.ai * r.assigned as f64;
            assigned += r.assigned;
        }
        let s = engine.summary();
        assert_eq!(s.assigned, assigned);
        assert!((s.average_influence - influence / assigned as f64).abs() < 1e-9);
    }
}
