//! The online assignment engine: a live DITA pipeline serving
//! streaming arrivals with bounded per-round pool maintenance.
//!
//! The paper evaluates one batch per day, but its own setup describes
//! an online platform ("a worker is online until the worker is
//! assigned a task"). [`OnlineEngine`] is that deployment mode as a
//! first-class subsystem:
//!
//! * **streaming state** — every mutation is one typed
//!   [`Event`] applied through [`OnlineEngine::apply`]
//!   (or its auto-stamping sibling [`OnlineEngine::ingest`]): task
//!   postings, worker logins, fold-ins, departures. Events are totally
//!   ordered by `(round, seq)` and serde-able, so the in-process
//!   drivers, the replay machinery, and the `dita serve` HTTP front all
//!   share one code path. Unassigned tasks persist until they expire;
//!   assigned workers leave the pool;
//! * **dynamic populations** — an engine built with
//!   [`NetworkMode::Adaptive`] owns its social network and folds
//!   previously-unseen workers into the live influence model on arrival
//!   ([`EventKind::WorkerNew`]): the graph
//!   grows, topic and willingness entries are fitted from the arrival's
//!   evidence, and the RRR pool splices the worker into live sets — so
//!   late arrivals earn **non-zero influence without a retrain**.
//!   Engines that cannot fold in (frozen or fixed-population) reject
//!   unknown workers explicitly
//!   ([`Outcome::Rejected`], with a named
//!   [`RejectReason`]) instead of silently
//!   accepting a worker that would always score zero;
//! * **one expiry pass per round** — arrivals are ingested *before*
//!   the expiry check, so a task that is already stale when the round
//!   opens is counted expired and never offered, exactly like a
//!   carried-over task (the batch simulator historically offered such
//!   tasks in their arrival round);
//! * **bounded maintenance instead of retraining** — each round the
//!   engine advances the RRR pool epoch, evicts at most
//!   `growth_cap` sets older than `eviction_horizon` rounds, and
//!   samples at most `growth_cap` fresh sets back toward the target
//!   ([`OnlineConfig`]). After warm-up the pipeline is never retrained:
//!   maintenance cost per round is `O(growth_cap · avg set size +
//!   live memberships)`, a small fraction of a full RPO build.
//!
//! Determinism: the pool's per-set seeding contract (PR 2) extends to
//! maintenance — eviction retires stream indices permanently and
//! growth continues the stream, so the live pool is a pure function of
//! `(master_seed, stream window)` at **any** thread count. Round
//! reports are therefore identical between `threads = 1` and
//! `threads = N` runs of the same arrival script.
//!
//! Rounds also *scale* with that thread budget: the pipeline the
//! engine owns shards its per-instance scoring passes — eligibility
//! construction, influence-cache warming, the per-pair influence
//! scan — over [`sc_core::DitaPipeline::scoring_threads`] threads
//! (the same `DitaConfig` knob that governed training), so a single
//! streaming round exploits all cores, not just batch sweeps. The
//! sharded passes merge in index order, which is why the bit-identity
//! above survives intra-round parallelism
//! (`crates/sim/tests/round_parallel_determinism.rs` pins it;
//! `bench_round` measures the speedup).
//!
//! Rounds are also *incremental* by default
//! ([`OnlineConfig::incremental`]): the engine carries an
//! [`EligibilityState`] across rounds — eligibility is advanced by a
//! delta from the previous round instead of rebuilt — and scores
//! through the pipeline's persistent content-keyed scorer cache, which
//! only worker fold-ins invalidate. Both reuse paths are exact, so a
//! round's [`RoundReport`] is bit-identical to the `--no-incremental`
//! rebuild baseline at any thread count
//! (`crates/sim/tests/incremental_round_determinism.rs` pins it;
//! `bench_round` measures the steady-state speedup). The report's
//! telemetry fields (`cache_hits`, `elig_*`, the `*_ms` phase split)
//! describe how the round was served and are excluded from equality.

use crate::event::{Event, EventKind, Outcome, RejectReason};
use sc_assign::AlgorithmKind;
use sc_core::{DitaPipeline, EligibilityState, OnlineConfig};
use sc_datagen::SyntheticDataset;
use sc_influence::SocialNetwork;
use sc_types::{Duration, History, Task, TaskId, TimeInstant, VenueId, Worker, WorkerId};
use serde::json::Value;
use std::collections::HashMap;
use std::time::Instant;

/// Builds the `id`-th event of a scripted arrival stream: a
/// deterministic venue pick (via [`rand::mix_stream`], the same
/// primitive that seeds RRR sets) and a `phi`-hour task published at
/// `now` from that venue, as an [`EventKind::TaskArrival`] ready for
/// [`OnlineEngine::ingest`]. Shared by the `dita online` CLI driver and
/// the `bench_online` / `bench_round` perf binaries so their arrival
/// streams cannot silently diverge — and routed through the same
/// `apply(Event)` path as wire events, so scripted and served streams
/// share one expiry-unified code path.
pub fn scripted_event(
    data: &SyntheticDataset,
    seed: u64,
    id: u32,
    now: TimeInstant,
    phi: f64,
) -> EventKind {
    let pick = rand::mix_stream(seed, id as u64) as usize % data.venues.len();
    let venue = data.venues.venue(VenueId::from(pick));
    EventKind::TaskArrival {
        task: Task::with_categories(
            TaskId::new(id),
            venue.location,
            now,
            Duration::hours_f64(phi),
            venue.categories.clone(),
        ),
        venue: venue.id,
    }
}

/// Deprecated tuple form of [`scripted_event`].
#[deprecated(
    since = "0.1.0",
    note = "use `scripted_event` and route it through `OnlineEngine::ingest`"
)]
pub fn scripted_arrival(
    data: &SyntheticDataset,
    seed: u64,
    id: u32,
    now: TimeInstant,
    phi: f64,
) -> (Task, VenueId) {
    match scripted_event(data, seed, id, now, phi) {
        EventKind::TaskArrival { task, venue } => (task, venue),
        _ => unreachable!("scripted_event only scripts task arrivals"),
    }
}

/// Outcome of one assignment round.
///
/// Equality ignores the wall-clock fields (`maintenance_ms` and the
/// per-phase `*_ms` split) **and** the cache/delta telemetry counters:
/// those describe *how* the round was served (incremental vs rebuild,
/// warm vs cold cache), while equality asserts *what* the round
/// decided — so the determinism suites can compare whole reports
/// across thread counts and across the incremental/rebuild paths.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Round counter (0-based).
    pub round: u64,
    /// The time instance the round was evaluated at.
    pub now: TimeInstant,
    /// Tasks that arrived since the previous round.
    pub task_arrivals: usize,
    /// Workers that arrived since the previous round.
    pub worker_arrivals: usize,
    /// Tasks offered this round (arrived + carried over, post-expiry).
    pub available_tasks: usize,
    /// Workers online when the round was assigned.
    pub online_workers: usize,
    /// Tasks assigned this round.
    pub assigned: usize,
    /// Tasks that expired at this round's open (including arrivals
    /// that were already stale).
    pub expired: usize,
    /// Average influence of this round's assignment.
    pub ai: f64,
    /// Live RRR sets after maintenance.
    pub pool_sets: usize,
    /// Stale sets evicted by this round's maintenance.
    pub sets_evicted: usize,
    /// Fresh sets sampled by this round's maintenance.
    pub sets_added: usize,
    /// Wall time of pool maintenance, milliseconds (excluded from
    /// `PartialEq`).
    pub maintenance_ms: f64, // lint: timing
    /// Eligibility phase wall time (delta apply or full build),
    /// milliseconds (excluded from `PartialEq`).
    pub eligibility_ms: f64, // lint: timing
    /// Scorer-cache warm wall time, milliseconds (excluded).
    pub warm_ms: f64, // lint: timing
    /// Pair-scan wall time, milliseconds (excluded).
    pub score_ms: f64, // lint: timing
    /// Assignment-solve wall time, milliseconds (excluded).
    pub solve_ms: f64, // lint: timing
    /// Distinct task-content keys already warm in the scorer cache
    /// (serving-mode telemetry, excluded from `PartialEq`).
    pub cache_hits: usize,
    /// Distinct task-content keys computed this round (excluded).
    pub cache_misses: usize,
    /// Shortest-path search passes the MCMF solve ran (excluded:
    /// engine-dependent — batching collapses passes — while the
    /// assignment itself is engine-invariant).
    pub solve_passes: usize,
    /// Augmenting paths the MCMF solve committed (excluded, like
    /// `solve_passes`).
    pub solve_augmentations: usize,
    /// Worker rows carried by the eligibility delta (excluded).
    pub elig_rows_carried: usize,
    /// Worker rows rebuilt by the eligibility delta (excluded).
    pub elig_rows_rebuilt: usize,
    /// Pairs reused from the previous round's matrix (excluded).
    pub elig_pairs_carried: usize,
    /// Whether eligibility fell back to a from-scratch build this
    /// round (always `true` on the `--no-incremental` path; excluded).
    pub elig_full_rebuild: bool,
}

impl PartialEq for RoundReport {
    fn eq(&self, other: &Self) -> bool {
        self.round == other.round
            && self.now == other.now
            && self.task_arrivals == other.task_arrivals
            && self.worker_arrivals == other.worker_arrivals
            && self.available_tasks == other.available_tasks
            && self.online_workers == other.online_workers
            && self.assigned == other.assigned
            && self.expired == other.expired
            && self.ai == other.ai
            && self.pool_sets == other.pool_sets
            && self.sets_evicted == other.sets_evicted
            && self.sets_added == other.sets_added
        // Wall-clock (`*_ms`) and serving-mode telemetry (cache hit
        // counts, eligibility delta shape) are run conditions, not
        // results: incremental and rebuild runs of the same script
        // must compare equal.
    }
}

/// The wire form of a [`RoundReport`] carries exactly the twelve
/// deterministic fields its `PartialEq` compares — wall-clock and
/// telemetry never reach the wire, so two serialized reports of the
/// same round are byte-identical across thread counts and across the
/// incremental/rebuild paths (the property the `dita serve` smoke job
/// diffs on). Deserialization zeroes the telemetry, so a parsed report
/// still compares equal to the original.
impl serde::Serialize for RoundReport {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("round".to_string(), self.round.to_value()),
            ("now".to_string(), self.now.to_value()),
            ("task_arrivals".to_string(), self.task_arrivals.to_value()),
            (
                "worker_arrivals".to_string(),
                self.worker_arrivals.to_value(),
            ),
            (
                "available_tasks".to_string(),
                self.available_tasks.to_value(),
            ),
            ("online_workers".to_string(), self.online_workers.to_value()),
            ("assigned".to_string(), self.assigned.to_value()),
            ("expired".to_string(), self.expired.to_value()),
            ("ai".to_string(), self.ai.to_value()),
            ("pool_sets".to_string(), self.pool_sets.to_value()),
            ("sets_evicted".to_string(), self.sets_evicted.to_value()),
            ("sets_added".to_string(), self.sets_added.to_value()),
        ])
    }
}

impl serde::Deserialize for RoundReport {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::expected("round report object", value))?;
        Ok(RoundReport {
            round: serde::get_field(obj, "round")?,
            now: serde::get_field(obj, "now")?,
            task_arrivals: serde::get_field(obj, "task_arrivals")?,
            worker_arrivals: serde::get_field(obj, "worker_arrivals")?,
            available_tasks: serde::get_field(obj, "available_tasks")?,
            online_workers: serde::get_field(obj, "online_workers")?,
            assigned: serde::get_field(obj, "assigned")?,
            expired: serde::get_field(obj, "expired")?,
            ai: serde::get_field(obj, "ai")?,
            pool_sets: serde::get_field(obj, "pool_sets")?,
            sets_evicted: serde::get_field(obj, "sets_evicted")?,
            sets_added: serde::get_field(obj, "sets_added")?,
            maintenance_ms: 0.0,
            eligibility_ms: 0.0,
            warm_ms: 0.0,
            score_ms: 0.0,
            solve_ms: 0.0,
            cache_hits: 0,
            cache_misses: 0,
            solve_passes: 0,
            solve_augmentations: 0,
            elig_rows_carried: 0,
            elig_rows_rebuilt: 0,
            elig_pairs_carried: 0,
            elig_full_rebuild: false,
        })
    }
}

/// Totals of an engine's lifetime, with the conservation invariant
/// `published == assigned + expired + still_open`.
///
/// Equality ignores the wall-clock field (`maintenance_ms`), mirroring
/// [`RoundReport`], so summaries of two runs of the same arrival
/// script compare equal across thread counts.
#[derive(Debug, Clone)]
pub struct OnlineSummary {
    /// Rounds executed.
    pub rounds: u64,
    /// Tasks that ever arrived.
    pub published: usize,
    /// Tasks assigned across all rounds.
    pub assigned: usize,
    /// Tasks that expired unassigned.
    pub expired: usize,
    /// Tasks still open (arrived, neither assigned nor expired).
    pub still_open: usize,
    /// Mean influence over every assignment made.
    pub average_influence: f64,
    /// Total fresh sets sampled by maintenance.
    pub sets_added: usize,
    /// Total stale sets evicted by maintenance.
    pub sets_evicted: usize,
    /// Total pool-maintenance wall time, milliseconds.
    pub maintenance_ms: f64,
}

impl PartialEq for OnlineSummary {
    fn eq(&self, other: &Self) -> bool {
        self.rounds == other.rounds
            && self.published == other.published
            && self.assigned == other.assigned
            && self.expired == other.expired
            && self.still_open == other.still_open
            && self.average_influence == other.average_influence
            && self.sets_added == other.sets_added
            && self.sets_evicted == other.sets_evicted
        // maintenance_ms is a run condition, not a result.
    }
}

/// Like [`RoundReport`], the wire form of a summary carries only the
/// deterministic fields; `maintenance_ms` never reaches the wire and
/// parses back as zero.
impl serde::Serialize for OnlineSummary {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("rounds".to_string(), self.rounds.to_value()),
            ("published".to_string(), self.published.to_value()),
            ("assigned".to_string(), self.assigned.to_value()),
            ("expired".to_string(), self.expired.to_value()),
            ("still_open".to_string(), self.still_open.to_value()),
            (
                "average_influence".to_string(),
                self.average_influence.to_value(),
            ),
            ("sets_added".to_string(), self.sets_added.to_value()),
            ("sets_evicted".to_string(), self.sets_evicted.to_value()),
        ])
    }
}

impl serde::Deserialize for OnlineSummary {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::expected("summary object", value))?;
        Ok(OnlineSummary {
            rounds: serde::get_field(obj, "rounds")?,
            published: serde::get_field(obj, "published")?,
            assigned: serde::get_field(obj, "assigned")?,
            expired: serde::get_field(obj, "expired")?,
            still_open: serde::get_field(obj, "still_open")?,
            average_influence: serde::get_field(obj, "average_influence")?,
            sets_added: serde::get_field(obj, "sets_added")?,
            sets_evicted: serde::get_field(obj, "sets_evicted")?,
            maintenance_ms: 0.0,
        })
    }
}

impl OnlineSummary {
    /// Fraction of published tasks that were assigned.
    pub fn assignment_rate(&self) -> f64 {
        if self.published == 0 {
            0.0
        } else {
            self.assigned as f64 / self.published as f64
        }
    }
}

/// How an engine holds its pipeline: owned (live, maintainable) or
/// frozen (zero-copy borrow for drivers that never rotate the pool,
/// like [`crate::platform::simulate_day`]). One of the two typed mode
/// axes of [`EngineBuilder`].
#[derive(Debug)]
pub enum PipelineMode<'a> {
    /// The engine owns (and may maintain / grow) the pipeline. Boxed:
    /// the pipeline struct is large and the borrowed variant is one
    /// pointer (clippy::large_enum_variant).
    Owned(Box<DitaPipeline>),
    /// The engine borrows a frozen pipeline; maintenance is forced off.
    Frozen(&'a DitaPipeline),
}

impl PipelineMode<'_> {
    fn get(&self) -> &DitaPipeline {
        match self {
            PipelineMode::Owned(p) => p,
            PipelineMode::Frozen(p) => p,
        }
    }
}

/// How an engine holds the social network: adaptive (owned and
/// growable — worker fold-in replaces it with the extended network) or
/// fixed (borrowed, fixed-population drivers). The other typed mode
/// axis of [`EngineBuilder`].
#[derive(Debug)]
pub enum NetworkMode<'a> {
    /// The engine owns the network and grows it on
    /// [`EventKind::WorkerNew`].
    Adaptive(Box<SocialNetwork>),
    /// The engine borrows the trained network; fold-in is rejected.
    Fixed(&'a SocialNetwork),
}

impl NetworkMode<'_> {
    fn get(&self) -> &SocialNetwork {
        match self {
            NetworkMode::Adaptive(n) => n,
            NetworkMode::Fixed(n) => n,
        }
    }
}

/// Builds an [`OnlineEngine`] from its two typed mode axes — how the
/// pipeline is held ([`PipelineMode`]) and how the network is held
/// ([`NetworkMode`]) — replacing the old
/// `new`/`with_config`/`adaptive`/`frozen` constructor sprawl.
///
/// Unless overridden with [`EngineBuilder::config`], the maintenance
/// configuration comes from the pipeline's trained
/// [`OnlineConfig`] for owned pipelines; a [`PipelineMode::Frozen`]
/// pipeline always runs the non-maintaining [`OnlineConfig::default`]
/// (a frozen engine cannot rotate a pool it does not own).
///
/// The three deployment modes:
///
/// ```
/// use sc_core::{DitaBuilder, DitaConfig, OnlineConfig};
/// use sc_datagen::{DatasetProfile, SyntheticDataset};
/// use sc_sim::{EngineBuilder, NetworkMode, PipelineMode};
///
/// let mut profile = DatasetProfile::brightkite_small();
/// profile.n_workers = 40;
/// profile.n_venues = 30;
/// let data = SyntheticDataset::generate(&profile, 7);
/// let config = DitaConfig {
///     n_topics: 3,
///     lda_sweeps: 4,
///     infer_sweeps: 2,
///     rpo: sc_influence::RpoParams { max_sets: 500, ..Default::default() },
///     ..Default::default()
/// };
/// let pipeline = DitaBuilder::new()
///     .config(config)
///     .build(&data.social, &data.histories)
///     .unwrap();
///
/// // 1. Frozen: borrow everything, never maintain — the paper's
/// //    trained-once setting over online dynamics.
/// let frozen = EngineBuilder::new()
///     .pipeline(PipelineMode::Frozen(&pipeline))
///     .network(NetworkMode::Fixed(&data.social))
///     .build();
/// assert!(!frozen.config().maintains_pool());
///
/// // 2. Owned + fixed population: live maintenance, no fold-in.
/// let owned = EngineBuilder::new()
///     .pipeline(PipelineMode::Owned(Box::new(pipeline.clone())))
///     .network(NetworkMode::Fixed(&data.social))
///     .config(OnlineConfig::streaming())
///     .build();
/// assert!(owned.config().maintains_pool());
///
/// // 3. Adaptive: own both — the only mode that folds unseen workers
/// //    into the live influence network.
/// let adaptive = EngineBuilder::new()
///     .pipeline(PipelineMode::Owned(Box::new(pipeline)))
///     .network(NetworkMode::Adaptive(Box::new(data.social.clone())))
///     .build();
/// assert!(adaptive.fold_in_enabled());
/// ```
#[derive(Debug, Default)]
pub struct EngineBuilder<'a> {
    pipeline: Option<PipelineMode<'a>>,
    network: Option<NetworkMode<'a>>,
    config: Option<OnlineConfig>,
}

impl<'a> EngineBuilder<'a> {
    /// An empty builder; [`EngineBuilder::pipeline`] and
    /// [`EngineBuilder::network`] are mandatory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets how the engine holds its pipeline.
    #[must_use]
    pub fn pipeline(mut self, mode: PipelineMode<'a>) -> Self {
        self.pipeline = Some(mode);
        self
    }

    /// Sets how the engine holds the social network.
    #[must_use]
    pub fn network(mut self, mode: NetworkMode<'a>) -> Self {
        self.network = Some(mode);
        self
    }

    /// Overrides the maintenance configuration trained into the
    /// pipeline. Ignored (forced to [`OnlineConfig::default`]) on a
    /// frozen pipeline, which cannot maintain.
    #[must_use]
    pub fn config(mut self, config: OnlineConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Builds the engine.
    ///
    /// # Panics
    /// When the pipeline or network mode was not set.
    pub fn build(self) -> OnlineEngine<'a> {
        let pipeline = self.pipeline.expect("EngineBuilder requires a pipeline");
        let net = self.network.expect("EngineBuilder requires a network");
        let config = match (&pipeline, self.config) {
            // A frozen engine cannot rotate a pool it does not own.
            (PipelineMode::Frozen(_), _) => OnlineConfig::default(),
            (PipelineMode::Owned(p), None) => p.model().config().online,
            (PipelineMode::Owned(_), Some(c)) => c,
        };
        let fold_in_enabled = matches!(
            (&pipeline, &net),
            (PipelineMode::Owned(_), NetworkMode::Adaptive(_))
        );
        OnlineEngine::assemble(pipeline, net, config, fold_in_enabled)
    }
}

/// What happened to an arriving worker — superseded by the richer
/// [`Outcome`] of the unified `apply(Event)` surface.
#[deprecated(
    since = "0.1.0",
    note = "use `Outcome` from `OnlineEngine::apply`/`ingest` instead"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalOutcome {
    /// Newly online; the trained influence network knows the worker.
    Joined,
    /// Was already online; state (location, radius) refreshed in place.
    Refreshed,
    /// Outside the trained population; folded into the live influence
    /// network ([`OnlineEngine::worker_arrives_new`]) — the worker
    /// scores non-zero influence from this round on.
    FoldedIn,
    /// Outside the trained population and this engine cannot fold in
    /// (frozen/borrowed, or no social evidence was provided): the
    /// worker is **not** admitted. Admitting them would only ever
    /// produce zero-influence assignments — the silent-dead-worker trap
    /// this variant closes.
    Rejected,
}

#[allow(deprecated)]
impl ArrivalOutcome {
    /// Whether the worker is online after the call.
    pub fn is_online(self) -> bool {
        !matches!(self, ArrivalOutcome::Rejected)
    }

    /// Whether the call added a worker that was not online before.
    pub fn is_new(self) -> bool {
        matches!(self, ArrivalOutcome::Joined | ArrivalOutcome::FoldedIn)
    }

    /// The [`Outcome`] this legacy value corresponds to (wrappers
    /// translate in the other direction; this exists for callers mid-
    /// migration).
    pub fn from_outcome(outcome: Outcome) -> Self {
        match outcome {
            Outcome::WorkerJoined => ArrivalOutcome::Joined,
            Outcome::WorkerRefreshed => ArrivalOutcome::Refreshed,
            Outcome::WorkerFoldedIn => ArrivalOutcome::FoldedIn,
            _ => ArrivalOutcome::Rejected,
        }
    }
}

/// A stateful online assignment engine owning a live [`DitaPipeline`].
///
/// Create it from a trained pipeline and the social network it was
/// trained on, feed arrivals, and call [`OnlineEngine::run_round`] at
/// each time instance. See the module docs for the maintenance and
/// determinism contracts. Drivers that never maintain the pool can
/// borrow the pipeline instead via [`OnlineEngine::frozen`].
#[derive(Debug)]
pub struct OnlineEngine<'a> {
    pipeline: PipelineMode<'a>,
    net: NetworkMode<'a>,
    config: OnlineConfig,
    /// Whether [`EventKind::WorkerNew`]
    /// may grow the live model. Set by the builder (owned pipeline +
    /// adaptive network), preserved by snapshot/restore — a restored
    /// engine owns both handles by construction, but keeps the
    /// fold-in policy of the engine it was snapshotted from.
    fold_in_enabled: bool,
    /// Live-set target maintenance holds the pool at.
    target_sets: usize,
    open: Vec<(Task, VenueId)>,
    workers: Vec<Worker>,
    /// `WorkerId` → index in `workers`: O(1) duplicate screening on
    /// arrival. Rebuilt after the (already linear) removal passes.
    online_index: HashMap<WorkerId, usize>,
    round: u64,
    /// Sequence stamp the next in-round event must carry; reset at
    /// every round close. Together with `round` this totally orders
    /// the event stream ([`Event`]).
    next_seq: u64,
    /// Carried eligibility CSR + fingerprints for the incremental
    /// round path ([`OnlineConfig::incremental`]); unused (left
    /// unprimed) when running rebuild rounds.
    elig: EligibilityState,
    pending_tasks: usize,
    pending_workers: usize,
    published: usize,
    assigned_total: usize,
    expired_total: usize,
    influence_sum: f64,
    sets_added_total: usize,
    sets_evicted_total: usize,
    maintenance_ms_total: f64,
}

impl<'a> OnlineEngine<'a> {
    /// Wraps a trained pipeline into an engine. The maintenance knobs
    /// come from the pipeline's [`OnlineConfig`]
    /// (`pipeline.model().config().online`); `net` must be the social
    /// network the pipeline was trained on.
    #[deprecated(
        since = "0.1.0",
        note = "use `EngineBuilder` with `PipelineMode::Owned` + `NetworkMode::Fixed`"
    )]
    pub fn new(pipeline: DitaPipeline, net: &'a SocialNetwork) -> Self {
        EngineBuilder::new()
            .pipeline(PipelineMode::Owned(Box::new(pipeline)))
            .network(NetworkMode::Fixed(net))
            .build()
    }

    /// Like `new` with an explicit maintenance configuration
    /// (overrides the one trained into the pipeline).
    #[deprecated(
        since = "0.1.0",
        note = "use `EngineBuilder` with `PipelineMode::Owned` + `NetworkMode::Fixed`"
    )]
    pub fn with_config(
        pipeline: DitaPipeline,
        net: &'a SocialNetwork,
        config: OnlineConfig,
    ) -> Self {
        EngineBuilder::new()
            .pipeline(PipelineMode::Owned(Box::new(pipeline)))
            .network(NetworkMode::Fixed(net))
            .config(config)
            .build()
    }

    /// An engine that owns both its pipeline *and* its social network —
    /// the dynamic-population mode.
    #[deprecated(
        since = "0.1.0",
        note = "use `EngineBuilder` with `PipelineMode::Owned` + `NetworkMode::Adaptive`"
    )]
    pub fn adaptive(
        pipeline: DitaPipeline,
        net: SocialNetwork,
        config: OnlineConfig,
    ) -> OnlineEngine<'static> {
        EngineBuilder::new()
            .pipeline(PipelineMode::Owned(Box::new(pipeline)))
            .network(NetworkMode::Adaptive(Box::new(net)))
            .config(config)
            .build()
    }

    /// A zero-copy engine borrowing a frozen pipeline.
    #[deprecated(
        since = "0.1.0",
        note = "use `EngineBuilder` with `PipelineMode::Frozen` + `NetworkMode::Fixed`"
    )]
    pub fn frozen(pipeline: &'a DitaPipeline, net: &'a SocialNetwork) -> Self {
        EngineBuilder::new()
            .pipeline(PipelineMode::Frozen(pipeline))
            .network(NetworkMode::Fixed(net))
            .build()
    }

    fn assemble(
        pipeline: PipelineMode<'a>,
        net: NetworkMode<'a>,
        config: OnlineConfig,
        fold_in_enabled: bool,
    ) -> Self {
        debug_assert_eq!(
            net.get().n_workers(),
            pipeline.get().model().pool().n_workers(),
            "engine network must match the trained pool"
        );
        debug_assert!(
            !config.maintains_pool() || matches!(pipeline, PipelineMode::Owned(_)),
            "a maintaining engine must own its pipeline"
        );
        let trained = pipeline.get().model().pool().n_sets();
        let target_sets = if config.target_sets == 0 {
            trained
        } else {
            config.target_sets
        };
        OnlineEngine {
            pipeline,
            net,
            config,
            fold_in_enabled,
            target_sets,
            open: Vec::new(),
            workers: Vec::new(),
            online_index: HashMap::new(),
            round: 0,
            next_seq: 0,
            elig: EligibilityState::new(),
            pending_tasks: 0,
            pending_workers: 0,
            published: 0,
            assigned_total: 0,
            expired_total: 0,
            influence_sum: 0.0,
            sets_added_total: 0,
            sets_evicted_total: 0,
            maintenance_ms_total: 0.0,
        }
    }

    /// Applies one explicitly stamped [`Event`] — the single ingestion
    /// entry point behind every driver (in-process harnesses, trace
    /// replay, the `dita serve` wire front).
    ///
    /// The stamp is validated before the payload: an event whose
    /// `round` is not the engine's current round is
    /// [`RejectReason::RoundMismatch`], and one whose `seq` is below
    /// the next expected position is [`RejectReason::OutOfOrder`] —
    /// within a round the sequence must be strictly increasing (gaps
    /// are fine; regressions are not). Use [`OnlineEngine::ingest`]
    /// when the engine itself should stamp the order.
    pub fn apply(&mut self, event: Event) -> Outcome {
        if event.round != self.round {
            return Outcome::Rejected(RejectReason::RoundMismatch);
        }
        if event.seq < self.next_seq {
            return Outcome::Rejected(RejectReason::OutOfOrder);
        }
        self.next_seq = event.seq + 1;
        match event.kind {
            EventKind::TaskArrival { task, venue } => self.apply_task(task, venue),
            EventKind::WorkerArrival { worker } => self.apply_worker(worker),
            EventKind::WorkerNew {
                worker,
                friends,
                history,
            } => self.apply_worker_new(worker, &friends, &history),
            EventKind::WorkerDeparture { worker } => self.apply_departure(worker),
        }
    }

    /// Applies an [`EventKind`], stamping it with the engine's current
    /// `(round, next seq)` — the convenience form for in-process
    /// drivers that generate events rather than receive them over a
    /// wire.
    pub fn ingest(&mut self, kind: EventKind) -> Outcome {
        let event = Event {
            round: self.round,
            seq: self.next_seq,
            kind,
        };
        self.apply(event)
    }

    /// A task arrival: offered from the next round on, unless it is
    /// already expired at that round's instant — then it is counted
    /// expired without ever being offered. Re-arrival of an id that is
    /// still open refreshes that entry in place
    /// ([`Outcome::TaskRefreshed`]) instead of duplicating it (a
    /// duplicated id would corrupt the `published == assigned +
    /// expired + still_open` invariant, because assignment and closing
    /// key tasks by id). The open list is transient and small (bounded
    /// by arrival rate × φ), so the screening scan is cheap.
    fn apply_task(&mut self, task: Task, venue: VenueId) -> Outcome {
        if let Some(entry) = self.open.iter_mut().find(|(t, _)| t.id == task.id) {
            *entry = (task, venue);
            return Outcome::TaskRefreshed;
        }
        self.open.push((task, venue));
        self.pending_tasks += 1;
        self.published += 1;
        Outcome::TaskPublished
    }

    /// A worker arrival (online from the next round on).
    ///
    /// Re-arrival of an already-online id refreshes that worker's
    /// state (location, radius) in place — multi-day drivers re-sample
    /// cohorts from one population, and a duplicated id would let one
    /// worker be assigned twice in a round.
    ///
    /// A worker **outside the trained population** is
    /// [`RejectReason::UnknownWorker`]: the model cannot score them,
    /// so admitting them could only ever produce zero-influence
    /// assignments (the silent trap this contract closes). Late
    /// arrivals with social evidence go through
    /// [`EventKind::WorkerNew`] instead.
    fn apply_worker(&mut self, worker: Worker) -> Outcome {
        if worker.id.index() >= self.pipeline.get().model().n_workers() {
            return Outcome::Rejected(RejectReason::UnknownWorker);
        }
        if let Some(&idx) = self.online_index.get(&worker.id) {
            self.workers[idx] = worker;
            return Outcome::WorkerRefreshed;
        }
        self.online_index.insert(worker.id, self.workers.len());
        self.workers.push(worker);
        self.pending_workers += 1;
        Outcome::WorkerJoined
    }

    /// Arrival of a worker the trained model has **never seen**, with
    /// their social evidence: `friends` are trained worker ids the
    /// arrival is befriended with, `history` is whatever check-in
    /// evidence exists so far (often a single record).
    ///
    /// On a fold-in-enabled engine (owned pipeline + adaptive network)
    /// the worker is folded into the live influence network without a
    /// retrain — the social graph grows
    /// ([`SocialNetwork::fold_in_worker`]), the model gains
    /// topic/willingness entries, and the RRR pool splices the worker
    /// into live sets (`sc_core::InfluenceModel::fold_in_worker`) — so
    /// the arrival scores non-zero influence from the next round on.
    /// The worker's id must be the next dense id
    /// (`pipeline().model().n_workers()`, else
    /// [`RejectReason::NonDenseId`]); a known id degrades to the plain
    /// worker-arrival path.
    ///
    /// Engines that cannot grow (frozen / fixed-population modes, or a
    /// restored engine whose original could not) reject with
    /// [`RejectReason::CannotFoldIn`]. An arrival with **no usable
    /// friendships** (none of `friends` is in the current population)
    /// rejects with [`RejectReason::NoUsableFriends`]: with zero
    /// social edges the fold-in could never join an RRR set, and the
    /// worker would be exactly the zero-influence admission this
    /// contract exists to prevent. Such a worker can simply re-arrive
    /// later, once a friend of theirs has been folded in.
    fn apply_worker_new(
        &mut self,
        worker: Worker,
        friends: &[WorkerId],
        history: &History,
    ) -> Outcome {
        let population = self.pipeline.get().model().n_workers();
        if worker.id.index() < population {
            return self.apply_worker(worker);
        }
        if !self.fold_in_enabled {
            return Outcome::Rejected(RejectReason::CannotFoldIn);
        }
        let (PipelineMode::Owned(pipeline), NetworkMode::Adaptive(net)) =
            (&mut self.pipeline, &mut self.net)
        else {
            return Outcome::Rejected(RejectReason::CannotFoldIn);
        };
        if worker.id.index() != population {
            // Fold-ins assign dense ids in arrival order; a gap means
            // the caller skipped an arrival.
            return Outcome::Rejected(RejectReason::NonDenseId);
        }
        let raw: Vec<u32> = friends
            .iter()
            .filter(|f| f.index() < population)
            .map(|f| f.raw())
            .collect();
        if raw.is_empty() {
            return Outcome::Rejected(RejectReason::NoUsableFriends);
        }
        **net = net.fold_in_worker(&raw);
        pipeline.model_mut().fold_in_worker(net, history);
        self.online_index.insert(worker.id, self.workers.len());
        self.workers.push(worker);
        self.pending_workers += 1;
        Outcome::WorkerFoldedIn
    }

    /// Removes an online worker (e.g. the worker logs off); a worker
    /// that was not online is [`RejectReason::NotOnline`].
    fn apply_departure(&mut self, id: WorkerId) -> Outcome {
        if !self.online_index.contains_key(&id) {
            return Outcome::Rejected(RejectReason::NotOnline);
        }
        // Order-preserving removal keeps the assignment input (and so
        // any tie-breaking) deterministic; the index is rebuilt by the
        // same linear pass.
        self.workers.retain(|w| w.id != id);
        self.reindex_workers();
        Outcome::WorkerDeparted
    }

    /// Legacy form of [`EventKind::TaskArrival`](crate::EventKind) —
    /// returns `true` iff the task was newly published.
    #[deprecated(
        since = "0.1.0",
        note = "use `ingest(EventKind::TaskArrival { .. })` (or `apply` with a stamped `Event`)"
    )]
    pub fn task_arrives(&mut self, task: Task, venue: VenueId) -> bool {
        matches!(
            self.ingest(EventKind::TaskArrival { task, venue }),
            Outcome::TaskPublished
        )
    }

    /// Legacy form of [`EventKind::WorkerArrival`](crate::EventKind).
    #[allow(deprecated)]
    #[deprecated(
        since = "0.1.0",
        note = "use `ingest(EventKind::WorkerArrival { .. })` (or `apply` with a stamped `Event`)"
    )]
    pub fn worker_arrives(&mut self, worker: Worker) -> ArrivalOutcome {
        ArrivalOutcome::from_outcome(self.ingest(EventKind::WorkerArrival { worker }))
    }

    /// Legacy form of [`EventKind::WorkerNew`](crate::EventKind).
    #[allow(deprecated)]
    #[deprecated(
        since = "0.1.0",
        note = "use `ingest(EventKind::WorkerNew { .. })` (or `apply` with a stamped `Event`)"
    )]
    pub fn worker_arrives_new(
        &mut self,
        worker: Worker,
        friends: &[WorkerId],
        history: &History,
    ) -> ArrivalOutcome {
        ArrivalOutcome::from_outcome(self.ingest(EventKind::WorkerNew {
            worker,
            friends: friends.to_vec(),
            history: history.clone(),
        }))
    }

    /// Legacy form of [`EventKind::WorkerDeparture`](crate::EventKind)
    /// — returns whether the worker was online.
    #[deprecated(
        since = "0.1.0",
        note = "use `ingest(EventKind::WorkerDeparture { .. })` (or `apply` with a stamped `Event`)"
    )]
    pub fn worker_departs(&mut self, id: WorkerId) -> bool {
        matches!(
            self.ingest(EventKind::WorkerDeparture { worker: id }),
            Outcome::WorkerDeparted
        )
    }

    /// Rebuilds the id→index map after an order-preserving removal.
    fn reindex_workers(&mut self) {
        self.online_index = self
            .workers
            .iter()
            .enumerate()
            .map(|(i, w)| (w.id, i))
            .collect();
    }

    /// Runs one assignment round at time `now`: expiry, bounded pool
    /// maintenance, assignment, retirement of matched workers/tasks.
    pub fn run_round(&mut self, now: TimeInstant, algorithm: AlgorithmKind) -> RoundReport {
        let task_arrivals = std::mem::take(&mut self.pending_tasks);
        let worker_arrivals = std::mem::take(&mut self.pending_workers);

        // One expiry pass over arrivals *and* carried tasks: a task is
        // offered iff it is alive at `now`, no matter when it arrived.
        let before = self.open.len();
        self.open.retain(|(t, _)| !t.is_expired_at(now));
        let expired = before - self.open.len();
        self.expired_total += expired;

        let (sets_evicted, sets_added, maintenance_ms) = self.maintain();

        let tasks: Vec<Task> = self.open.iter().map(|(t, _)| t.clone()).collect();
        let venues: Vec<VenueId> = self.open.iter().map(|(_, v)| *v).collect();
        let available_tasks = tasks.len();
        let online_workers = self.workers.len();
        let instance = sc_types::Instance::new(now, self.workers.clone(), tasks);
        let elig = if self.config.incremental {
            Some(&mut self.elig)
        } else {
            None
        };
        let (assignment, perf) = self
            .pipeline
            .get()
            .assign_round(&instance, &venues, algorithm, elig);

        let assigned = assignment.len();
        let ai = assignment.average_influence();
        self.assigned_total += assigned;
        self.influence_sum += assignment.total_influence();

        // Assigned workers leave the platform; assigned tasks close.
        let assigned_workers: std::collections::HashSet<WorkerId> =
            assignment.pairs().iter().map(|p| p.worker).collect();
        let assigned_tasks: std::collections::HashSet<sc_types::TaskId> =
            assignment.pairs().iter().map(|p| p.task).collect();
        if !assigned_workers.is_empty() {
            self.workers.retain(|w| !assigned_workers.contains(&w.id));
            self.reindex_workers();
        }
        self.open.retain(|(t, _)| !assigned_tasks.contains(&t.id));

        let report = RoundReport {
            round: self.round,
            now,
            task_arrivals,
            worker_arrivals,
            available_tasks,
            online_workers,
            assigned,
            expired,
            ai,
            pool_sets: self.pipeline.get().model().pool().n_sets(),
            sets_evicted,
            sets_added,
            maintenance_ms,
            eligibility_ms: perf.eligibility_ms,
            warm_ms: perf.warm_ms,
            score_ms: perf.score_ms,
            solve_ms: perf.solve_ms,
            cache_hits: perf.cache_hits,
            cache_misses: perf.cache_misses,
            solve_passes: perf.solve_passes,
            solve_augmentations: perf.solve_augmentations,
            elig_rows_carried: perf.delta.rows_carried,
            elig_rows_rebuilt: perf.delta.rows_rebuilt,
            elig_pairs_carried: perf.delta.pairs_carried,
            elig_full_rebuild: perf.delta.full_rebuild,
        };
        self.round += 1;
        self.next_seq = 0;
        report
    }

    /// One bounded maintenance step: advance the pool epoch, evict at
    /// most `growth_cap` sets that fell behind the horizon, sample at
    /// most `growth_cap` fresh sets back toward the target.
    fn maintain(&mut self) -> (usize, usize, f64) {
        if !self.config.maintains_pool() {
            return (0, 0, 0.0);
        }
        let t0 = Instant::now();
        let quantum = self.config.growth_cap;
        let horizon = self.config.eviction_horizon;
        let net = self.net.get();
        let (pool, threads) = match &mut self.pipeline {
            PipelineMode::Owned(p) => {
                // Resolved per round, not cached at construction, so a
                // live re-budget (`pipeline_mut().set_threads(..)`)
                // reaches maintenance top-ups too — one knob governs
                // scoring *and* maintenance at all times.
                let threads = p.scoring_threads();
                (p.model_mut().pool_mut(), threads)
            }
            // Unreachable: the builder forces a non-maintaining config
            // on frozen pipelines.
            PipelineMode::Frozen(_) => return (0, 0, 0.0),
        };

        let epoch = pool.advance_epoch();
        let evicted = if horizon > 0 && epoch > horizon {
            pool.evict_before_epoch(epoch - horizon, quantum)
        } else {
            0
        };
        let live = pool.n_sets();
        let target = self.target_sets.min(live + quantum);
        let added = target.saturating_sub(live);
        if added > 0 {
            pool.extend_to(net, target, threads);
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        self.sets_evicted_total += evicted;
        self.sets_added_total += added;
        self.maintenance_ms_total += ms;
        (evicted, added, ms)
    }

    /// The live pipeline.
    pub fn pipeline(&self) -> &DitaPipeline {
        self.pipeline.get()
    }

    /// The social network the engine maintains the pool against. On a
    /// [`NetworkMode::Adaptive`] engine this grows with every fold-in;
    /// otherwise it is the trained network.
    pub fn network(&self) -> &SocialNetwork {
        self.net.get()
    }

    /// Mutable access to the live pipeline — used by the
    /// retrain-every-round oracle in `bench_online`; normal drivers
    /// never need it.
    ///
    /// # Panics
    /// On a borrowed-pipeline engine ([`PipelineMode::Frozen`]), which
    /// by construction never mutates its pipeline.
    pub fn pipeline_mut(&mut self) -> &mut DitaPipeline {
        match &mut self.pipeline {
            PipelineMode::Owned(p) => p,
            PipelineMode::Frozen(_) => {
                panic!("a frozen (borrowed-pipeline) engine cannot be mutated")
            }
        }
    }

    /// Consumes the engine, returning the (maintained) pipeline. A
    /// borrowed-pipeline engine returns a clone of the frozen original.
    pub fn into_pipeline(self) -> DitaPipeline {
        match self.pipeline {
            PipelineMode::Owned(p) => *p,
            PipelineMode::Frozen(p) => p.clone(),
        }
    }

    /// The maintenance configuration in effect.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// Whether [`EventKind::WorkerNew`]
    /// may grow the live model on this engine (owned pipeline +
    /// adaptive network; preserved across snapshot/restore).
    pub fn fold_in_enabled(&self) -> bool {
        self.fold_in_enabled
    }

    /// The `(round, seq)` stamp the next [`Event`] must carry — what
    /// [`OnlineEngine::ingest`] would stamp. Wire fronts use this to
    /// label queued events without applying them yet.
    pub fn next_stamp(&self) -> (u64, u64) {
        (self.round, self.next_seq)
    }

    /// Tasks currently open (arrived, unexpired, unassigned — plus
    /// arrivals not yet screened by a round).
    pub fn open_tasks(&self) -> usize {
        self.open.len()
    }

    /// Workers currently online.
    pub fn online_workers(&self) -> usize {
        self.workers.len()
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u64 {
        self.round
    }

    /// Lifetime totals (see [`OnlineSummary`] for the invariant).
    pub fn summary(&self) -> OnlineSummary {
        OnlineSummary {
            rounds: self.round,
            published: self.published,
            assigned: self.assigned_total,
            expired: self.expired_total,
            still_open: self.open.len(),
            average_influence: if self.assigned_total == 0 {
                0.0
            } else {
                self.influence_sum / self.assigned_total as f64
            },
            sets_added: self.sets_added_total,
            sets_evicted: self.sets_evicted_total,
            maintenance_ms: self.maintenance_ms_total,
        }
    }
}

/// Snapshot serde of the whole engine: the live pipeline (model: LDA,
/// topics, willingness, entropy, RRR pool with its epoch window and
/// stream base), the social network, and every report-affecting
/// counter of the engine itself.
///
/// Two states are deliberately **not** serialized, because they are
/// derived and their exactness contracts make the rebuild
/// bit-identical: the scorer cache (warm/cold serve the same scores)
/// and the carried [`EligibilityState`] (the first restored round runs
/// a full eligibility rebuild, which the incremental-determinism suite
/// pins as byte-equal to the delta path). `online_index` is rebuilt
/// from the worker list. A restored engine therefore emits the same
/// [`RoundReport`] stream as the uninterrupted original, at any thread
/// count — `crates/sim/tests/snapshot_roundtrip.rs` pins it.
impl serde::Serialize for OnlineEngine<'_> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("config".to_string(), self.config.to_value()),
            (
                "fold_in_enabled".to_string(),
                self.fold_in_enabled.to_value(),
            ),
            ("target_sets".to_string(), self.target_sets.to_value()),
            ("open".to_string(), self.open.to_value()),
            ("workers".to_string(), self.workers.to_value()),
            ("round".to_string(), self.round.to_value()),
            ("next_seq".to_string(), self.next_seq.to_value()),
            ("pending_tasks".to_string(), self.pending_tasks.to_value()),
            (
                "pending_workers".to_string(),
                self.pending_workers.to_value(),
            ),
            ("published".to_string(), self.published.to_value()),
            ("assigned_total".to_string(), self.assigned_total.to_value()),
            ("expired_total".to_string(), self.expired_total.to_value()),
            ("influence_sum".to_string(), self.influence_sum.to_value()),
            (
                "sets_added_total".to_string(),
                self.sets_added_total.to_value(),
            ),
            (
                "sets_evicted_total".to_string(),
                self.sets_evicted_total.to_value(),
            ),
            (
                "maintenance_ms_total".to_string(),
                self.maintenance_ms_total.to_value(),
            ),
            ("pipeline".to_string(), self.pipeline.get().to_value()),
            ("network".to_string(), self.net.get().to_value()),
        ])
    }
}

impl serde::Deserialize for OnlineEngine<'static> {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::expected("engine object", value))?;
        let workers: Vec<Worker> = serde::get_field(obj, "workers")?;
        let online_index: HashMap<WorkerId, usize> =
            workers.iter().enumerate().map(|(i, w)| (w.id, i)).collect();
        let pipeline: DitaPipeline = serde::get_field(obj, "pipeline")?;
        let network: SocialNetwork = serde::get_field(obj, "network")?;
        Ok(OnlineEngine {
            pipeline: PipelineMode::Owned(Box::new(pipeline)),
            net: NetworkMode::Adaptive(Box::new(network)),
            config: serde::get_field(obj, "config")?,
            fold_in_enabled: serde::get_field(obj, "fold_in_enabled")?,
            target_sets: serde::get_field(obj, "target_sets")?,
            open: serde::get_field(obj, "open")?,
            workers,
            online_index,
            round: serde::get_field(obj, "round")?,
            next_seq: serde::get_field(obj, "next_seq")?,
            elig: EligibilityState::new(),
            pending_tasks: serde::get_field(obj, "pending_tasks")?,
            pending_workers: serde::get_field(obj, "pending_workers")?,
            published: serde::get_field(obj, "published")?,
            assigned_total: serde::get_field(obj, "assigned_total")?,
            expired_total: serde::get_field(obj, "expired_total")?,
            influence_sum: serde::get_field(obj, "influence_sum")?,
            sets_added_total: serde::get_field(obj, "sets_added_total")?,
            sets_evicted_total: serde::get_field(obj, "sets_evicted_total")?,
            maintenance_ms_total: serde::get_field(obj, "maintenance_ms_total")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::{DitaBuilder, DitaConfig};
    use sc_datagen::{DatasetProfile, InstanceOptions, SyntheticDataset};
    use sc_influence::RpoParams;
    use sc_types::Duration;

    fn setup(online: OnlineConfig) -> (SyntheticDataset, DitaPipeline) {
        let mut profile = DatasetProfile::brightkite_small();
        profile.n_workers = 100;
        profile.n_venues = 100;
        profile.checkins_per_worker = 10;
        let dataset = SyntheticDataset::generate(&profile, 4);
        let pipeline = DitaBuilder::new()
            .config(DitaConfig {
                n_topics: 5,
                lda_sweeps: 10,
                infer_sweeps: 5,
                rpo: RpoParams {
                    max_sets: 3_000,
                    ..Default::default()
                },
                online,
                solver: Default::default(),
                seed: 2,
            })
            .build(&dataset.social, &dataset.histories)
            .unwrap();
        (dataset, pipeline)
    }

    fn owned_engine(pipeline: DitaPipeline, net: &SocialNetwork) -> OnlineEngine<'_> {
        EngineBuilder::new()
            .pipeline(PipelineMode::Owned(Box::new(pipeline)))
            .network(NetworkMode::Fixed(net))
            .build()
    }

    fn adaptive_engine(
        pipeline: DitaPipeline,
        net: SocialNetwork,
        config: OnlineConfig,
    ) -> OnlineEngine<'static> {
        EngineBuilder::new()
            .pipeline(PipelineMode::Owned(Box::new(pipeline)))
            .network(NetworkMode::Adaptive(Box::new(net)))
            .config(config)
            .build()
    }

    fn feed_workers(engine: &mut OnlineEngine<'_>, dataset: &SyntheticDataset, n: usize) {
        let base = dataset.instance_for_day(0, 0, n, InstanceOptions::default());
        for worker in base.instance.workers {
            engine.ingest(EventKind::WorkerArrival { worker });
        }
    }

    fn hourly_task(
        dataset: &SyntheticDataset,
        id: u32,
        now: TimeInstant,
        phi: f64,
    ) -> (Task, VenueId) {
        let venue = dataset.venues.venue(sc_types::VenueId::from(
            (id as usize * 7) % dataset.venues.len(),
        ));
        (
            Task::with_categories(
                sc_types::TaskId::new(id),
                venue.location,
                now,
                Duration::hours_f64(phi),
                venue.categories.clone(),
            ),
            venue.id,
        )
    }

    #[test]
    fn frozen_config_never_touches_the_pool() {
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let fp = pipeline.model().pool().fingerprint();
        let mut engine = owned_engine(pipeline, &dataset.social);
        feed_workers(&mut engine, &dataset, 40);
        for hour in 8..14 {
            let now = TimeInstant::at(0, hour);
            for i in 0..8u32 {
                let (task, venue) = hourly_task(&dataset, hour as u32 * 100 + i, now, 3.0);
                engine.ingest(EventKind::TaskArrival { task, venue });
            }
            let r = engine.run_round(now, AlgorithmKind::Ia);
            assert_eq!(r.sets_added, 0);
            assert_eq!(r.sets_evicted, 0);
        }
        assert_eq!(engine.pipeline().model().pool().fingerprint(), fp);
        let s = engine.summary();
        assert_eq!(s.published, s.assigned + s.expired + s.still_open);
        assert!(s.assigned > 0);
    }

    #[test]
    fn maintenance_is_bounded_per_round_and_rotates() {
        let online = OnlineConfig {
            round_hours: 1,
            growth_cap: 256,
            eviction_horizon: 2,
            target_sets: 0,
            incremental: true,
        };
        let (dataset, pipeline) = setup(online);
        let trained = pipeline.model().pool().n_sets();
        let mut engine = owned_engine(pipeline, &dataset.social);
        feed_workers(&mut engine, &dataset, 30);
        let mut evicted_any = false;
        for hour in 0..10 {
            let now = TimeInstant::at(0, hour);
            let (task, venue) = hourly_task(&dataset, hour as u32, now, 4.0);
            engine.ingest(EventKind::TaskArrival { task, venue });
            let r = engine.run_round(now, AlgorithmKind::Ia);
            assert!(r.sets_added <= 256, "growth cap violated: {}", r.sets_added);
            assert!(
                r.sets_evicted <= 256,
                "eviction cap violated: {}",
                r.sets_evicted
            );
            assert!(r.pool_sets <= trained);
            evicted_any |= r.sets_evicted > 0;
        }
        assert!(evicted_any, "horizon 2 must rotate stale sets out");
        assert!(
            engine.pipeline().model().pool().stream_base() > 0,
            "rotation retires stream indices"
        );
        let s = engine.summary();
        assert_eq!(s.sets_added, s.sets_evicted, "steady state at the target");
    }

    #[test]
    fn stale_arrival_is_expired_not_offered() {
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let mut engine = owned_engine(pipeline, &dataset.social);
        feed_workers(&mut engine, &dataset, 20);
        // Arrived long before the round instant, already expired.
        let (stale, v) = hourly_task(&dataset, 0, TimeInstant::at(0, 1), 1.0);
        engine.ingest(EventKind::TaskArrival {
            task: stale,
            venue: v,
        });
        // Alive control task.
        let now = TimeInstant::at(0, 9);
        let (alive, v2) = hourly_task(&dataset, 1, now, 3.0);
        engine.ingest(EventKind::TaskArrival {
            task: alive,
            venue: v2,
        });
        let r = engine.run_round(now, AlgorithmKind::Ia);
        assert_eq!(r.task_arrivals, 2);
        assert_eq!(r.expired, 1, "stale arrival expires at the round open");
        assert_eq!(r.available_tasks, 1, "stale arrival is never offered");
        let s = engine.summary();
        assert_eq!(s.published, 2);
        assert_eq!(s.published, s.assigned + s.expired + s.still_open);
    }

    #[test]
    fn workers_depart_and_assigned_workers_leave() {
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let mut engine = owned_engine(pipeline, &dataset.social);
        feed_workers(&mut engine, &dataset, 10);
        assert_eq!(engine.online_workers(), 10);
        let departing = WorkerId::new(0);
        let went = engine.ingest(EventKind::WorkerDeparture { worker: departing });
        // The sampled instance may or may not include worker 0; if it
        // did, the pool shrinks — and either way the outcome says which.
        match went {
            Outcome::WorkerDeparted => assert_eq!(engine.online_workers(), 9),
            Outcome::Rejected(RejectReason::NotOnline) => {
                assert_eq!(engine.online_workers(), 10)
            }
            other => panic!("unexpected departure outcome {other:?}"),
        }
        let before = engine.online_workers();
        let now = TimeInstant::at(0, 9);
        for i in 0..20u32 {
            let (task, venue) = hourly_task(&dataset, i, now, 5.0);
            engine.ingest(EventKind::TaskArrival { task, venue });
        }
        let r = engine.run_round(now, AlgorithmKind::Mta);
        assert!(r.assigned > 0);
        assert_eq!(engine.online_workers(), before - r.assigned);
    }

    #[test]
    fn rearriving_worker_is_refreshed_not_duplicated() {
        // Multi-day drivers re-sample cohorts from one population: a
        // carried-over worker re-sampled the next morning must not be
        // duplicated (a duplicated id could be assigned two tasks in
        // one round).
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let mut engine = owned_engine(pipeline, &dataset.social);
        feed_workers(&mut engine, &dataset, 15);
        let n = engine.online_workers();
        // Day-2 cohort drawn from the same population overlaps day 1's.
        let day2 = dataset.instance_for_day(0, 0, 15, InstanceOptions::default());
        for worker in day2.instance.workers {
            assert_eq!(
                engine.ingest(EventKind::WorkerArrival { worker }),
                Outcome::WorkerRefreshed,
                "same cohort: every id re-arrives"
            );
        }
        assert_eq!(engine.online_workers(), n, "no duplicates added");
        let now = TimeInstant::at(0, 9);
        for i in 0..30u32 {
            let (task, venue) = hourly_task(&dataset, i, now, 5.0);
            engine.ingest(EventKind::TaskArrival { task, venue });
        }
        let r = engine.run_round(now, AlgorithmKind::Mta);
        assert!(
            r.assigned <= n,
            "each distinct worker serves at most one task"
        );
    }

    #[test]
    fn rearriving_open_task_is_refreshed_not_duplicated() {
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let mut engine = owned_engine(pipeline, &dataset.social);
        feed_workers(&mut engine, &dataset, 20);
        let now = TimeInstant::at(0, 9);
        let (t, v) = hourly_task(&dataset, 7, now, 4.0);
        assert_eq!(
            engine.ingest(EventKind::TaskArrival {
                task: t.clone(),
                venue: v,
            }),
            Outcome::TaskPublished
        );
        assert_eq!(
            engine.ingest(EventKind::TaskArrival { task: t, venue: v }),
            Outcome::TaskRefreshed,
            "same open id refreshes in place"
        );
        assert_eq!(engine.open_tasks(), 1);
        let r = engine.run_round(now, AlgorithmKind::Ia);
        assert_eq!(r.task_arrivals, 1);
        let s = engine.summary();
        assert_eq!(s.published, 1, "a refreshed task is published once");
        assert_eq!(s.published, s.assigned + s.expired + s.still_open);
    }

    #[test]
    fn frozen_engine_borrows_without_cloning() {
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let fp = pipeline.model().pool().fingerprint();
        let mut engine = EngineBuilder::new()
            .pipeline(PipelineMode::Frozen(&pipeline))
            .network(NetworkMode::Fixed(&dataset.social))
            .build();
        feed_workers(&mut engine, &dataset, 20);
        let now = TimeInstant::at(0, 10);
        for i in 0..10u32 {
            let (task, venue) = hourly_task(&dataset, i, now, 3.0);
            engine.ingest(EventKind::TaskArrival { task, venue });
        }
        let r = engine.run_round(now, AlgorithmKind::Ia);
        assert!(r.assigned > 0);
        assert_eq!(
            r.sets_added + r.sets_evicted,
            0,
            "frozen engines never maintain"
        );
        // The borrowed original is untouched and still usable.
        drop(engine);
        assert_eq!(pipeline.model().pool().fingerprint(), fp);
    }

    #[test]
    #[should_panic(expected = "frozen (borrowed-pipeline) engine")]
    fn frozen_engine_rejects_mutation() {
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let mut engine = EngineBuilder::new()
            .pipeline(PipelineMode::Frozen(&pipeline))
            .network(NetworkMode::Fixed(&dataset.social))
            .build();
        let _ = engine.pipeline_mut();
    }

    #[test]
    fn unknown_workers_are_rejected_not_silently_accepted() {
        // The zero-influence trap: a worker outside the trained
        // population can never score, so both the frozen and the
        // fixed-population engines must refuse the arrival explicitly.
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let ghost = Worker::new(WorkerId::new(10_000), sc_types::Location::ORIGIN, 25.0);

        let mut frozen = EngineBuilder::new()
            .pipeline(PipelineMode::Frozen(&pipeline))
            .network(NetworkMode::Fixed(&dataset.social))
            .build();
        assert_eq!(
            frozen.ingest(EventKind::WorkerArrival {
                worker: ghost.clone(),
            }),
            Outcome::Rejected(RejectReason::UnknownWorker)
        );
        assert_eq!(
            frozen.ingest(EventKind::WorkerNew {
                worker: ghost.clone(),
                friends: vec![WorkerId::new(0)],
                history: History::new(),
            }),
            Outcome::Rejected(RejectReason::CannotFoldIn),
            "a frozen engine cannot fold in"
        );
        assert_eq!(frozen.online_workers(), 0);

        let mut owned = owned_engine(pipeline, &dataset.social);
        assert_eq!(
            owned.ingest(EventKind::WorkerArrival { worker: ghost }),
            Outcome::Rejected(RejectReason::UnknownWorker)
        );
        assert_eq!(owned.online_workers(), 0);
    }

    #[test]
    fn friendless_fold_in_is_rejected_on_adaptive_engines() {
        // No usable friendships means the fold-in could never join an
        // RRR set — admitting the worker would re-open the
        // zero-influence trap. They can re-arrive once a friend exists.
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let trained = pipeline.model().n_workers();
        let mut engine = adaptive_engine(pipeline, dataset.social.clone(), OnlineConfig::default());
        let late = Worker::new(WorkerId::from(trained), sc_types::Location::ORIGIN, 25.0);
        assert_eq!(
            engine.ingest(EventKind::WorkerNew {
                worker: late.clone(),
                friends: vec![],
                history: History::new(),
            }),
            Outcome::Rejected(RejectReason::NoUsableFriends),
            "no friends at all"
        );
        assert_eq!(
            engine.ingest(EventKind::WorkerNew {
                worker: late.clone(),
                friends: vec![WorkerId::from(trained + 3)],
                history: History::new(),
            }),
            Outcome::Rejected(RejectReason::NoUsableFriends),
            "friends outside the population are unusable"
        );
        assert_eq!(engine.online_workers(), 0);
        assert_eq!(
            engine.pipeline().model().n_workers(),
            trained,
            "nothing folded"
        );
        // With one real friend the same arrival folds in.
        assert_eq!(
            engine.ingest(EventKind::WorkerNew {
                worker: late,
                friends: vec![WorkerId::new(0)],
                history: History::new(),
            }),
            Outcome::WorkerFoldedIn
        );
    }

    #[test]
    fn adaptive_engine_folds_in_late_arrival_with_nonzero_influence() {
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let trained = pipeline.model().n_workers();
        let trained_sets = pipeline.model().pool().n_sets();
        let mut engine = adaptive_engine(pipeline, dataset.social.clone(), OnlineConfig::default());
        feed_workers(&mut engine, &dataset, 30);

        // The arrival: checked in once at venue 0, friends with two
        // trained workers.
        let venue = dataset.venues.venue(sc_types::VenueId::new(0));
        let mut hist = History::new();
        hist.push(sc_types::CheckIn::at(
            WorkerId::from(trained),
            venue.id,
            venue.location,
            TimeInstant::at(0, 8),
            venue.categories.clone(),
        ));
        let late = Worker::new(WorkerId::from(trained), venue.location, 25.0);
        let friends = vec![WorkerId::new(0), WorkerId::new(1), WorkerId::new(2)];
        assert_eq!(
            engine.ingest(EventKind::WorkerNew {
                worker: late,
                friends: friends.clone(),
                history: hist.clone(),
            }),
            Outcome::WorkerFoldedIn
        );
        assert_eq!(engine.pipeline().model().n_workers(), trained + 1);
        assert_eq!(engine.network().n_workers(), trained + 1);
        assert_eq!(
            engine.pipeline().model().pool().n_sets(),
            trained_sets,
            "fold-in never resamples"
        );

        // The folded worker scores non-zero influence on a task at its
        // own venue — every factor of the product is live.
        let (task, _) = hourly_task(&dataset, 0, TimeInstant::at(0, 9), 4.0);
        let task = Task::with_categories(
            task.id,
            venue.location,
            task.published,
            task.valid_for,
            venue.categories.clone(),
        );
        let score = engine
            .pipeline()
            .scorer()
            .score(WorkerId::from(trained), &task);
        assert!(
            score > 0.0,
            "a folded-in late arrival must earn non-zero influence, got {score}"
        );

        // And a second unseen id must arrive densely: skipping one is
        // rejected.
        let skipper = Worker::new(WorkerId::from(trained + 5), venue.location, 25.0);
        assert_eq!(
            engine.ingest(EventKind::WorkerNew {
                worker: skipper,
                friends,
                history: hist,
            }),
            Outcome::Rejected(RejectReason::NonDenseId)
        );
    }

    #[test]
    fn folded_worker_participates_in_rounds_and_maintenance() {
        // Fold-in composes with bounded rotation: maintenance keeps
        // extending the pool against the *grown* network.
        let online = OnlineConfig {
            round_hours: 1,
            growth_cap: 256,
            eviction_horizon: 2,
            target_sets: 0,
            incremental: true,
        };
        let (dataset, pipeline) = setup(online);
        let trained = pipeline.model().n_workers();
        let mut engine = adaptive_engine(pipeline, dataset.social.clone(), online);
        feed_workers(&mut engine, &dataset, 20);
        let venue = dataset.venues.venue(sc_types::VenueId::new(3));
        let mut hist = History::new();
        hist.push(sc_types::CheckIn::at(
            WorkerId::from(trained),
            venue.id,
            venue.location,
            TimeInstant::at(0, 8),
            venue.categories.clone(),
        ));
        let late = Worker::new(WorkerId::from(trained), venue.location, 25.0);
        assert!(engine
            .ingest(EventKind::WorkerNew {
                worker: late,
                friends: vec![WorkerId::new(0)],
                history: hist,
            })
            .is_online());
        for hour in 9..14 {
            let now = TimeInstant::at(0, hour);
            for i in 0..6u32 {
                let (task, venue) = hourly_task(&dataset, hour as u32 * 10 + i, now, 4.0);
                engine.ingest(EventKind::TaskArrival { task, venue });
            }
            let r = engine.run_round(now, AlgorithmKind::Ia);
            assert!(r.sets_added <= 256);
        }
        let s = engine.summary();
        assert!(s.assigned > 0);
        assert_eq!(s.published, s.assigned + s.expired + s.still_open);
    }

    #[test]
    fn summary_average_influence_is_assignment_weighted() {
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let mut engine = owned_engine(pipeline, &dataset.social);
        feed_workers(&mut engine, &dataset, 50);
        let mut influence = 0.0;
        let mut assigned = 0usize;
        for hour in 8..12 {
            let now = TimeInstant::at(0, hour);
            for i in 0..10u32 {
                let (task, venue) = hourly_task(&dataset, hour as u32 * 50 + i, now, 2.0);
                engine.ingest(EventKind::TaskArrival { task, venue });
            }
            let r = engine.run_round(now, AlgorithmKind::Ia);
            influence += r.ai * r.assigned as f64;
            assigned += r.assigned;
        }
        let s = engine.summary();
        assert_eq!(s.assigned, assigned);
        assert!((s.average_influence - influence / assigned as f64).abs() < 1e-9);
    }

    #[test]
    fn apply_enforces_the_total_order() {
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let mut engine = owned_engine(pipeline, &dataset.social);
        let worker_event = |id: u32, round: u64, seq: u64| {
            let base = dataset.instance_for_day(0, 0, 5, InstanceOptions::default());
            Event {
                round,
                seq,
                kind: EventKind::WorkerArrival {
                    worker: base.instance.workers[id as usize].clone(),
                },
            }
        };
        assert_eq!(engine.next_stamp(), (0, 0));
        // A stamp from a future (or past) round is refused outright.
        assert_eq!(
            engine.apply(worker_event(0, 3, 0)),
            Outcome::Rejected(RejectReason::RoundMismatch)
        );
        // In-order events advance the stamp; gaps are fine.
        assert_eq!(engine.apply(worker_event(0, 0, 0)), Outcome::WorkerJoined);
        assert_eq!(engine.apply(worker_event(1, 0, 5)), Outcome::WorkerJoined);
        assert_eq!(engine.next_stamp(), (0, 6));
        // A regression within the round is refused.
        assert_eq!(
            engine.apply(worker_event(2, 0, 4)),
            Outcome::Rejected(RejectReason::OutOfOrder)
        );
        assert_eq!(engine.online_workers(), 2, "rejected events change nothing");
        // Closing the round advances `round` and resets `seq` to zero.
        let _ = engine.run_round(TimeInstant::at(0, 9), AlgorithmKind::Ia);
        assert_eq!(engine.next_stamp(), (1, 0));
        assert_eq!(
            engine.apply(worker_event(2, 0, 0)),
            Outcome::Rejected(RejectReason::RoundMismatch),
            "last round's stamps are dead"
        );
        assert_eq!(engine.apply(worker_event(2, 1, 0)), Outcome::WorkerJoined);
    }

    #[test]
    fn scripted_event_scripts_a_task_arrival() {
        let (dataset, _) = setup(OnlineConfig::default());
        match scripted_event(&dataset, 7, 17, TimeInstant::at(0, 9), 2.0) {
            EventKind::TaskArrival { task, venue } => {
                assert_eq!(task.id, sc_types::TaskId::new(17));
                let v = dataset.venues.venue(venue);
                assert_eq!(task.location, v.location);
                assert_eq!(task.categories, v.categories);
            }
            other => panic!("scripted_event must be a task arrival, got {other:?}"),
        }
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_wrappers_translate_to_the_event_surface() {
        // The deprecated method family must keep working mid-migration,
        // returning the old vocabulary for the new outcomes.
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let mut engine = OnlineEngine::new(pipeline, &dataset.social);
        let base = dataset.instance_for_day(0, 0, 3, InstanceOptions::default());
        let w = base.instance.workers[0].clone();
        assert_eq!(engine.worker_arrives(w.clone()), ArrivalOutcome::Joined);
        assert_eq!(engine.worker_arrives(w.clone()), ArrivalOutcome::Refreshed);
        let ghost = Worker::new(WorkerId::new(10_000), sc_types::Location::ORIGIN, 25.0);
        assert_eq!(engine.worker_arrives(ghost), ArrivalOutcome::Rejected);
        let (t, v) = hourly_task(&dataset, 1, TimeInstant::at(0, 9), 3.0);
        assert!(engine.task_arrives(t.clone(), v), "new task id");
        assert!(!engine.task_arrives(t, v), "refresh is the old `false`");
        assert!(engine.worker_departs(w.id));
        assert!(!engine.worker_departs(w.id), "already gone");
        assert_eq!(
            ArrivalOutcome::from_outcome(Outcome::WorkerFoldedIn),
            ArrivalOutcome::FoldedIn
        );
        assert_eq!(
            ArrivalOutcome::from_outcome(Outcome::Rejected(RejectReason::UnknownWorker)),
            ArrivalOutcome::Rejected
        );
    }

    #[test]
    fn engine_snapshot_roundtrips_mid_stream() {
        // Snapshot an engine mid-round (open tasks, online workers,
        // non-zero seq) and check the restored engine continues with
        // bit-identical reports.
        let (dataset, pipeline) = setup(OnlineConfig::default());
        let mut engine = adaptive_engine(pipeline, dataset.social.clone(), OnlineConfig::default());
        feed_workers(&mut engine, &dataset, 25);
        let now = TimeInstant::at(0, 9);
        for i in 0..6u32 {
            let (task, venue) = hourly_task(&dataset, i, now, 4.0);
            engine.ingest(EventKind::TaskArrival { task, venue });
        }
        let _ = engine.run_round(now, AlgorithmKind::Ia);
        // Mid-round state: two more arrivals after the round closed.
        let (task, venue) = hourly_task(&dataset, 100, TimeInstant::at(0, 10), 4.0);
        engine.ingest(EventKind::TaskArrival { task, venue });

        let text = crate::snapshot::snapshot_to_string(&engine).unwrap();
        let mut restored = crate::snapshot::snapshot_from_str(&text).unwrap();
        assert_eq!(restored.next_stamp(), engine.next_stamp());
        assert_eq!(restored.open_tasks(), engine.open_tasks());
        assert_eq!(restored.online_workers(), engine.online_workers());
        assert_eq!(restored.fold_in_enabled(), engine.fold_in_enabled());

        let later = TimeInstant::at(0, 10);
        let a = engine.run_round(later, AlgorithmKind::Ia);
        let b = restored.run_round(later, AlgorithmKind::Ia);
        assert_eq!(a, b, "restored engine must continue bit-identically");
        assert_eq!(engine.summary(), restored.summary());

        // And the snapshot of the snapshot is stable.
        let again = crate::snapshot::snapshot_to_string(&restored).unwrap();
        let twice = crate::snapshot::snapshot_from_str(&again).unwrap();
        assert_eq!(twice.next_stamp(), restored.next_stamp());
    }
}
