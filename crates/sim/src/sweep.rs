//! Parameter sweeps (the x-axes of the paper's figures, Table II).

use sc_datagen::{DatasetProfile, InstanceOptions};
use serde::{Deserialize, Serialize};

/// Which Table II parameter an experiment varies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SweepAxis {
    /// Number of tasks `|S|` (Figures 5, 9, 10).
    Tasks(Vec<usize>),
    /// Number of workers `|W|` (Figures 6, 11, 12).
    Workers(Vec<usize>),
    /// Valid time `φ` in hours (Figures 7, 13, 14).
    ValidHours(Vec<f64>),
    /// Reachable radius `r` in km (Figures 8, 15, 16).
    RadiusKm(Vec<f64>),
}

impl SweepAxis {
    /// Human-readable axis name.
    pub fn name(&self) -> &'static str {
        match self {
            SweepAxis::Tasks(_) => "|S|",
            SweepAxis::Workers(_) => "|W|",
            SweepAxis::ValidHours(_) => "phi (h)",
            SweepAxis::RadiusKm(_) => "r (km)",
        }
    }

    /// The numeric sweep values.
    pub fn values(&self) -> Vec<f64> {
        match self {
            SweepAxis::Tasks(v) => v.iter().map(|&x| x as f64).collect(),
            SweepAxis::Workers(v) => v.iter().map(|&x| x as f64).collect(),
            SweepAxis::ValidHours(v) | SweepAxis::RadiusKm(v) => v.clone(),
        }
    }

    /// Resolves the sweep point `value` into concrete instance
    /// parameters, starting from the defaults.
    pub fn apply(&self, value: f64, defaults: &SweepValues) -> SweepValues {
        let mut out = defaults.clone();
        match self {
            SweepAxis::Tasks(_) => out.n_tasks = value as usize,
            SweepAxis::Workers(_) => out.n_workers = value as usize,
            SweepAxis::ValidHours(_) => out.options.valid_hours = value,
            SweepAxis::RadiusKm(_) => out.options.radius_km = value,
        }
        out
    }
}

/// Concrete per-instance parameters of a sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepValues {
    /// Tasks per instance.
    pub n_tasks: usize,
    /// Workers per instance.
    pub n_workers: usize,
    /// Valid time / radius / instance hour.
    pub options: InstanceOptions,
}

impl SweepValues {
    /// Paper defaults: |S| = 1500, |W| = 1200, φ = 5 h, r = 25 km.
    pub fn paper_defaults() -> Self {
        SweepValues {
            n_tasks: 1_500,
            n_workers: 1_200,
            options: InstanceOptions::default(),
        }
    }

    /// Laptop-scale defaults (10× smaller populations, same φ and r).
    pub fn small_defaults() -> Self {
        SweepValues {
            n_tasks: 150,
            n_workers: 120,
            options: InstanceOptions::default(),
        }
    }
}

/// Experiment scale: paper-sized sweeps or quick laptop sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// The paper's sweep ranges on the full synthetic profiles.
    Paper,
    /// 10×-reduced ranges on the `_small` profiles (CI-friendly).
    Small,
}

impl ExperimentScale {
    /// Reads the scale from the `DITA_SCALE` environment variable
    /// (`paper` or `small`, default small so casual runs stay quick).
    pub fn from_env() -> Self {
        match std::env::var("DITA_SCALE").as_deref() {
            Ok("paper") | Ok("PAPER") => ExperimentScale::Paper,
            _ => ExperimentScale::Small,
        }
    }

    /// The dataset profile of the given family at this scale.
    pub fn profile(&self, family: &str) -> DatasetProfile {
        match (self, family) {
            (ExperimentScale::Paper, "BK") => DatasetProfile::brightkite(),
            (ExperimentScale::Paper, "FS") => DatasetProfile::foursquare(),
            (ExperimentScale::Small, "BK") => DatasetProfile::brightkite_small(),
            (ExperimentScale::Small, "FS") => DatasetProfile::foursquare_small(),
            _ => panic!("unknown dataset family {family}; use \"BK\" or \"FS\""),
        }
    }

    /// Default instance parameters at this scale.
    pub fn defaults(&self) -> SweepValues {
        match self {
            ExperimentScale::Paper => SweepValues::paper_defaults(),
            ExperimentScale::Small => SweepValues::small_defaults(),
        }
    }

    /// The |S| sweep (paper: 500..2500).
    pub fn tasks_axis(&self) -> SweepAxis {
        match self {
            ExperimentScale::Paper => SweepAxis::Tasks(vec![500, 1000, 1500, 2000, 2500]),
            ExperimentScale::Small => SweepAxis::Tasks(vec![50, 100, 150, 200, 250]),
        }
    }

    /// The |W| sweep (paper: 400..2000).
    pub fn workers_axis(&self) -> SweepAxis {
        match self {
            ExperimentScale::Paper => SweepAxis::Workers(vec![400, 800, 1200, 1600, 2000]),
            ExperimentScale::Small => SweepAxis::Workers(vec![40, 80, 120, 160, 200]),
        }
    }

    /// The φ sweep (paper: 1..6 h) — identical at both scales.
    pub fn valid_time_axis(&self) -> SweepAxis {
        SweepAxis::ValidHours(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    /// The r sweep (paper: 5..25 km) — identical at both scales.
    pub fn radius_axis(&self) -> SweepAxis {
        SweepAxis::RadiusKm(vec![5.0, 10.0, 15.0, 20.0, 25.0])
    }

    /// Days averaged per sweep point (paper: 4).
    pub fn n_days(&self) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_table_ii() {
        let d = SweepValues::paper_defaults();
        assert_eq!(d.n_tasks, 1500);
        assert_eq!(d.n_workers, 1200);
        assert_eq!(d.options.valid_hours, 5.0);
        assert_eq!(d.options.radius_km, 25.0);
    }

    #[test]
    fn axis_apply_changes_only_its_parameter() {
        let d = SweepValues::paper_defaults();
        let tasks = SweepAxis::Tasks(vec![]).apply(500.0, &d);
        assert_eq!(tasks.n_tasks, 500);
        assert_eq!(tasks.n_workers, 1200);

        let phi = SweepAxis::ValidHours(vec![]).apply(2.0, &d);
        assert_eq!(phi.options.valid_hours, 2.0);
        assert_eq!(phi.options.radius_km, 25.0);

        let r = SweepAxis::RadiusKm(vec![]).apply(10.0, &d);
        assert_eq!(r.options.radius_km, 10.0);

        let w = SweepAxis::Workers(vec![]).apply(400.0, &d);
        assert_eq!(w.n_workers, 400);
    }

    #[test]
    fn axis_metadata() {
        assert_eq!(SweepAxis::Tasks(vec![1, 2]).values(), vec![1.0, 2.0]);
        assert_eq!(SweepAxis::Tasks(vec![]).name(), "|S|");
        assert_eq!(SweepAxis::RadiusKm(vec![5.0]).name(), "r (km)");
    }

    #[test]
    fn scales_resolve_profiles() {
        assert_eq!(ExperimentScale::Paper.profile("BK").name, "BK");
        assert_eq!(ExperimentScale::Small.profile("FS").name, "FS-small");
        assert_eq!(ExperimentScale::Paper.n_days(), 4);
    }

    #[test]
    fn paper_axes_match_figures() {
        let s = ExperimentScale::Paper;
        assert_eq!(
            s.tasks_axis().values(),
            vec![500.0, 1000.0, 1500.0, 2000.0, 2500.0]
        );
        assert_eq!(
            s.workers_axis().values(),
            vec![400.0, 800.0, 1200.0, 1600.0, 2000.0]
        );
        assert_eq!(s.valid_time_axis().values().len(), 6);
        assert_eq!(s.radius_axis().values(), vec![5.0, 10.0, 15.0, 20.0, 25.0]);
    }

    #[test]
    #[should_panic(expected = "unknown dataset family")]
    fn unknown_family_panics() {
        let _ = ExperimentScale::Paper.profile("XX");
    }
}
