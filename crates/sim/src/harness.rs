//! The experiment harness: trains DITA once per dataset, then sweeps one
//! Table II parameter and measures every algorithm (paper Section V-B).

use crate::metrics::{MetricsAccumulator, MetricsRow};
use crate::sweep::{SweepAxis, SweepValues};
use sc_assign::{run_with_matrix, AlgorithmKind, AssignInput, EligibilityMatrix};
use sc_core::{
    DitaBuilder, DitaConfig, DitaPipeline, InfluenceScorer, InfluenceVariant, Parallelism,
};
use sc_datagen::{DatasetProfile, SyntheticDataset};
use sc_types::Assignment;
use std::time::Instant;

/// One sweep point of a comparison experiment (Figures 9–16).
#[derive(Debug, Clone)]
pub struct ComparisonPoint {
    /// The sweep-axis value (|S|, |W|, φ or r).
    pub x: f64,
    /// Metrics per algorithm (MTA, IA, EIA, DIA, MI).
    pub rows: Vec<MetricsRow>,
}

/// One sweep point of an ablation experiment (Figures 5–8).
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// The sweep-axis value.
    pub x: f64,
    /// `(variant label, Average Influence)` per variant.
    pub ai: Vec<(String, f64)>,
}

/// Trains a pipeline on a synthetic dataset and runs sweeps on it.
pub struct ExperimentRunner {
    dataset: SyntheticDataset,
    pipeline: DitaPipeline,
    n_days: usize,
    /// Thread budget for the sweep phase (parallel point evaluation).
    sweep_threads: Parallelism,
}

impl ExperimentRunner {
    /// Generates the dataset (deterministic in `seed`), trains the DITA
    /// pipeline, and prepares the runner.
    pub fn new(profile: &DatasetProfile, seed: u64, config: DitaConfig) -> Self {
        let dataset = SyntheticDataset::generate(profile, seed);
        let pipeline = DitaBuilder::new()
            .config(config)
            .build(&dataset.social, &dataset.histories)
            .expect("pipeline training cannot fail on a valid profile");
        ExperimentRunner {
            dataset,
            pipeline,
            n_days: 4,
            sweep_threads: Parallelism::Auto,
        }
    }

    /// Like [`ExperimentRunner::new`] with an explicit thread budget
    /// governing **both** phases: RRR-pool sampling during training and
    /// sweep-point evaluation in
    /// [`ExperimentRunner::run_comparison_parallel`] /
    /// [`ExperimentRunner::run_ablation_parallel`]. Metrics are
    /// bit-identical at any budget — sampling is seeded per set index
    /// and sweep points merge in axis order — so sweeps stay comparable
    /// across machines and thread counts.
    pub fn with_threads(
        profile: &DatasetProfile,
        seed: u64,
        mut config: DitaConfig,
        threads: Parallelism,
    ) -> Self {
        config.rpo.threads = threads;
        let mut runner = Self::new(profile, seed, config);
        runner.sweep_threads = threads;
        runner
    }

    /// Overrides the number of simulated days averaged per point.
    #[must_use]
    pub fn days(mut self, n_days: usize) -> Self {
        self.n_days = n_days.max(1);
        self
    }

    /// Overrides the sweep-phase thread budget only (training keeps
    /// its own [`DitaConfig::threads`] setting).
    #[must_use]
    pub fn sweep_threads(mut self, threads: Parallelism) -> Self {
        self.sweep_threads = threads;
        self
    }

    /// The generated dataset.
    pub fn dataset(&self) -> &SyntheticDataset {
        &self.dataset
    }

    /// The trained pipeline.
    pub fn pipeline(&self) -> &DitaPipeline {
        &self.pipeline
    }

    /// Runs the five comparison algorithms over a sweep. Per point and
    /// day: build the instance, compute eligibility and warm the
    /// influence cache once (shared by all algorithms, as in the DITA
    /// framework), then time each algorithm's assignment step.
    pub fn run_comparison(&self, axis: &SweepAxis, defaults: &SweepValues) -> Vec<ComparisonPoint> {
        axis.values()
            .into_iter()
            .map(|x| self.comparison_point(x, axis, defaults))
            .collect()
    }

    /// Like [`ExperimentRunner::run_comparison`] but with sweep points
    /// distributed over the configured thread budget
    /// ([`ExperimentRunner::sweep_threads`], default one shard per
    /// core). Points are chunked into at most `budget` contiguous
    /// shards — never one OS thread per point — and merged in axis
    /// order, so counts, influence, propagation, and travel metrics are
    /// bit-identical to the sequential runner at any budget. `cpu_ms`
    /// is noisier under contention; use the sequential runner when
    /// timing fidelity matters.
    pub fn run_comparison_parallel(
        &self,
        axis: &SweepAxis,
        defaults: &SweepValues,
    ) -> Vec<ComparisonPoint> {
        let xs = axis.values();
        sc_stats::par::map_chunked(xs.len(), self.sweep_threads.resolve(), |i| {
            self.comparison_point(xs[i], axis, defaults)
        })
    }

    /// One sweep point of the comparison experiment.
    fn comparison_point(
        &self,
        x: f64,
        axis: &SweepAxis,
        defaults: &SweepValues,
    ) -> ComparisonPoint {
        let algorithms = AlgorithmKind::COMPARISON;
        let values = axis.apply(x, defaults);
        let mut accs: Vec<MetricsAccumulator> = algorithms
            .iter()
            .map(|_| MetricsAccumulator::new())
            .collect();

        for day in 0..self.n_days {
            let day_inst = self.dataset.instance_for_day(
                day,
                values.n_tasks,
                values.n_workers,
                values.options,
            );
            let matrix = EligibilityMatrix::build(&day_inst.instance);
            let scorer = self.pipeline.scorer();
            warm_influence_cache(&scorer, &day_inst.instance, &matrix);
            let entropies = self.pipeline.model().task_entropies(&day_inst.task_venues);

            for (ai_idx, &kind) in algorithms.iter().enumerate() {
                let input = AssignInput::new(&day_inst.instance, &scorer).with_entropy(&entropies);
                let start = Instant::now();
                let assignment = run_with_matrix(kind, &input, &matrix);
                let cpu_ms = start.elapsed().as_secs_f64() * 1e3;
                self.record(&mut accs[ai_idx], cpu_ms, &assignment);
            }
        }

        ComparisonPoint {
            x,
            rows: algorithms
                .iter()
                .zip(accs.iter())
                .map(|(kind, acc)| acc.finish(kind.to_string()))
                .collect(),
        }
    }

    /// Runs the IA ablation variants over a sweep, reporting AI
    /// (Figures 5–8: IA, IA-WP, IA-AP, IA-AW).
    pub fn run_ablation(&self, axis: &SweepAxis, defaults: &SweepValues) -> Vec<AblationPoint> {
        axis.values()
            .into_iter()
            .map(|x| self.ablation_point(x, axis, defaults))
            .collect()
    }

    /// Like [`ExperimentRunner::run_ablation`] with points distributed
    /// over the configured [`ExperimentRunner::sweep_threads`] budget;
    /// results are bit-identical to the sequential runner.
    pub fn run_ablation_parallel(
        &self,
        axis: &SweepAxis,
        defaults: &SweepValues,
    ) -> Vec<AblationPoint> {
        let xs = axis.values();
        sc_stats::par::map_chunked(xs.len(), self.sweep_threads.resolve(), |i| {
            self.ablation_point(xs[i], axis, defaults)
        })
    }

    /// One sweep point of the ablation experiment.
    fn ablation_point(&self, x: f64, axis: &SweepAxis, defaults: &SweepValues) -> AblationPoint {
        let values = axis.apply(x, defaults);
        let mut sums = vec![0.0f64; InfluenceVariant::ALL.len()];
        for day in 0..self.n_days {
            let day_inst = self.dataset.instance_for_day(
                day,
                values.n_tasks,
                values.n_workers,
                values.options,
            );
            let matrix = EligibilityMatrix::build(&day_inst.instance);
            // AI is always evaluated under the *full* influence
            // definition so the variants are comparable — a variant
            // only changes which pairs get chosen, not the yardstick.
            let full_scorer = self.pipeline.scorer();
            for (vi, &variant) in InfluenceVariant::ALL.iter().enumerate() {
                let scorer = self.pipeline.scorer_variant(variant);
                let input = AssignInput::new(&day_inst.instance, &scorer);
                let assignment = run_with_matrix(AlgorithmKind::Ia, &input, &matrix);
                sums[vi] += self.full_ai(&assignment, &day_inst.instance, &full_scorer);
            }
        }
        AblationPoint {
            x,
            ai: InfluenceVariant::ALL
                .iter()
                .zip(sums.iter())
                .map(|(v, s)| (v.label().to_string(), s / self.n_days as f64))
                .collect(),
        }
    }

    fn record(&self, acc: &mut MetricsAccumulator, cpu_ms: f64, assignment: &Assignment) {
        acc.push(
            cpu_ms,
            assignment.len(),
            assignment.average_influence(),
            self.pipeline.average_propagation(assignment),
            assignment.average_travel_km(),
        );
    }

    /// Re-scores an assignment under the full influence definition
    /// (variant runs optimized a reduced score, whose magnitudes are not
    /// comparable across variants).
    fn full_ai(
        &self,
        assignment: &Assignment,
        instance: &sc_types::Instance,
        full_scorer: &InfluenceScorer<'_>,
    ) -> f64 {
        if assignment.is_empty() {
            return 0.0;
        }
        let by_id: std::collections::HashMap<_, _> =
            instance.tasks.iter().map(|t| (t.id, t)).collect();
        let total: f64 = assignment
            .pairs()
            .iter()
            .map(|p| full_scorer.score(p.worker, by_id[&p.task]))
            .sum();
        total / assignment.len() as f64
    }
}

/// Fills the scorer's per-task cache up front so that per-algorithm
/// timings measure the assignment step, not the shared influence-model
/// evaluation. Runs on one thread: sweep points are already evaluated
/// in parallel on the outer chunked scheduler, so sharding inside a
/// point would oversubscribe the budget.
fn warm_influence_cache(
    scorer: &InfluenceScorer<'_>,
    instance: &sc_types::Instance,
    matrix: &EligibilityMatrix,
) {
    scorer.warm_eligible(instance, matrix, 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_influence::RpoParams;

    fn tiny_runner() -> ExperimentRunner {
        let mut profile = DatasetProfile::brightkite_small();
        profile.n_workers = 120;
        profile.n_venues = 120;
        profile.checkins_per_worker = 12;
        let config = DitaConfig {
            n_topics: 6,
            lda_sweeps: 15,
            infer_sweeps: 8,
            rpo: RpoParams {
                max_sets: 5_000,
                ..Default::default()
            },
            seed: 5,
            ..Default::default()
        };
        ExperimentRunner::new(&profile, 9, config).days(2)
    }

    #[test]
    fn comparison_sweep_produces_all_series() {
        let runner = tiny_runner();
        let axis = SweepAxis::Tasks(vec![20, 40]);
        let defaults = SweepValues {
            n_tasks: 30,
            n_workers: 40,
            options: Default::default(),
        };
        let points = runner.run_comparison(&axis, &defaults);
        assert_eq!(points.len(), 2);
        for point in &points {
            assert_eq!(point.rows.len(), 5);
            let names: Vec<&str> = point.rows.iter().map(|r| r.algorithm.as_str()).collect();
            assert_eq!(names, vec!["MTA", "IA", "EIA", "DIA", "MI"]);
            for row in &point.rows {
                assert!(row.cpu_ms >= 0.0);
                assert!(row.assigned >= 0.0);
                assert!(row.ai >= 0.0);
                assert!(row.travel_km >= 0.0);
            }
        }
        // More tasks => more assignments for the flow algorithms.
        let mta0 = &points[0].rows[0];
        let mta1 = &points[1].rows[0];
        assert!(mta1.assigned >= mta0.assigned);
    }

    #[test]
    fn flow_algorithms_share_max_cardinality() {
        let runner = tiny_runner();
        let axis = SweepAxis::Tasks(vec![40]);
        let defaults = SweepValues {
            n_tasks: 40,
            n_workers: 60,
            options: Default::default(),
        };
        let point = &runner.run_comparison(&axis, &defaults)[0];
        let by_name = |n: &str| {
            point
                .rows
                .iter()
                .find(|r| r.algorithm == n)
                .unwrap()
                .assigned
        };
        // MTA, IA, DIA solve the same max-flow; EIA too (entropy only
        // reweights); MI may assign fewer.
        assert_eq!(by_name("MTA"), by_name("IA"));
        assert_eq!(by_name("IA"), by_name("DIA"));
        assert_eq!(by_name("IA"), by_name("EIA"));
        assert!(by_name("MI") <= by_name("IA"));
    }

    #[test]
    fn ablation_sweep_reports_four_variants() {
        let runner = tiny_runner();
        let axis = SweepAxis::Workers(vec![30, 60]);
        let defaults = SweepValues {
            n_tasks: 30,
            n_workers: 40,
            options: Default::default(),
        };
        let points = runner.run_ablation(&axis, &defaults);
        assert_eq!(points.len(), 2);
        for p in &points {
            let labels: Vec<&str> = p.ai.iter().map(|(l, _)| l.as_str()).collect();
            assert_eq!(labels, vec!["IA", "IA-WP", "IA-AP", "IA-AW"]);
            for (_, ai) in &p.ai {
                assert!(*ai >= 0.0 && ai.is_finite());
            }
        }
    }

    #[test]
    fn parallel_sweep_respects_thread_budget() {
        // Six sweep points on a budget of two: the chunked scheduler
        // must evaluate them on at most two worker threads (previously
        // it spawned one OS thread per point unconditionally). Verified
        // via the shared chunking plan: one contiguous shard per worker
        // thread, never more shards than the budget.
        let budget = 2usize;
        let points = 6usize;
        let bounds = sc_stats::par::chunk_bounds(points, budget);
        assert_eq!(bounds.len(), budget, "at most one shard per budget slot");
        assert_eq!(bounds, vec![(0, 3), (3, 6)]);

        // And the runner wired through it produces sequential-identical
        // metrics at that budget.
        let runner = tiny_runner().sweep_threads(Parallelism::Fixed(budget));
        let axis = SweepAxis::Tasks(vec![10, 15, 20, 25, 30, 35]);
        let defaults = SweepValues {
            n_tasks: 20,
            n_workers: 30,
            options: Default::default(),
        };
        let seq = runner.run_comparison(&axis, &defaults);
        let par = runner.run_comparison_parallel(&axis, &defaults);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.x, b.x);
            for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
                assert_eq!(ra.assigned, rb.assigned);
                assert_eq!(ra.ai, rb.ai);
            }
        }
    }

    #[test]
    fn parallel_ablation_matches_sequential() {
        let runner = tiny_runner().sweep_threads(Parallelism::Fixed(2));
        let axis = SweepAxis::Workers(vec![20, 30, 40]);
        let defaults = SweepValues {
            n_tasks: 25,
            n_workers: 30,
            options: Default::default(),
        };
        let seq = runner.run_ablation(&axis, &defaults);
        let par = runner.run_ablation_parallel(&axis, &defaults);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.x, b.x);
            assert_eq!(a.ai, b.ai, "ablation metrics must merge deterministically");
        }
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let runner = tiny_runner();
        let axis = SweepAxis::Tasks(vec![20, 35, 50]);
        let defaults = SweepValues {
            n_tasks: 30,
            n_workers: 40,
            options: Default::default(),
        };
        let seq = runner.run_comparison(&axis, &defaults);
        let par = runner.run_comparison_parallel(&axis, &defaults);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.x, b.x, "point order preserved");
            for (ra, rb) in a.rows.iter().zip(b.rows.iter()) {
                assert_eq!(ra.algorithm, rb.algorithm);
                assert_eq!(ra.assigned, rb.assigned);
                assert!((ra.ai - rb.ai).abs() < 1e-12);
                assert!((ra.ap - rb.ap).abs() < 1e-12);
                assert!((ra.travel_km - rb.travel_km).abs() < 1e-12);
                // cpu_ms intentionally not compared (timing noise).
            }
        }
    }

    #[test]
    fn thread_budget_does_not_change_metrics() {
        // The RRR pool is bit-identical at any thread count, so every
        // downstream metric must match exactly between budgets.
        let mut profile = DatasetProfile::brightkite_small();
        profile.n_workers = 80;
        profile.n_venues = 80;
        profile.checkins_per_worker = 10;
        let config = DitaConfig {
            n_topics: 5,
            lda_sweeps: 10,
            infer_sweeps: 6,
            rpo: RpoParams {
                max_sets: 4_000,
                ..Default::default()
            },
            seed: 3,
            ..Default::default()
        };
        let single =
            ExperimentRunner::with_threads(&profile, 9, config, Parallelism::Single).days(1);
        let four =
            ExperimentRunner::with_threads(&profile, 9, config, Parallelism::Fixed(4)).days(1);
        assert_eq!(
            single.pipeline().model().pool().fingerprint(),
            four.pipeline().model().pool().fingerprint(),
            "training pools must be bit-identical"
        );
        let axis = SweepAxis::Tasks(vec![20]);
        let defaults = SweepValues {
            n_tasks: 20,
            n_workers: 30,
            options: Default::default(),
        };
        let a = single.run_comparison(&axis, &defaults);
        let b = four.run_comparison(&axis, &defaults);
        for (pa, pb) in a.iter().zip(b.iter()) {
            for (ra, rb) in pa.rows.iter().zip(pb.rows.iter()) {
                assert_eq!(ra.assigned, rb.assigned, "{}", ra.algorithm);
                assert_eq!(ra.ai, rb.ai);
                assert_eq!(ra.ap, rb.ap);
                assert_eq!(ra.travel_km, rb.travel_km);
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let runner = tiny_runner();
        let axis = SweepAxis::Tasks(vec![25]);
        let defaults = SweepValues {
            n_tasks: 25,
            n_workers: 30,
            options: Default::default(),
        };
        let a = runner.run_comparison(&axis, &defaults);
        let b = runner.run_comparison(&axis, &defaults);
        for (pa, pb) in a.iter().zip(b.iter()) {
            for (ra, rb) in pa.rows.iter().zip(pb.rows.iter()) {
                assert_eq!(ra.assigned, rb.assigned, "{}", ra.algorithm);
                assert!((ra.ai - rb.ai).abs() < 1e-12);
                assert!((ra.travel_km - rb.travel_km).abs() < 1e-12);
            }
        }
    }
}
