//! Budget-respecting deterministic parallel map for sweep points.
//!
//! `std::thread::scope` with one thread per item oversubscribes on long
//! axes and ignores the user's [`sc_core::Parallelism`] knob. This
//! helper chunks the item range into at most `threads` contiguous
//! shards, runs each shard sequentially on its own scoped thread, and
//! concatenates shard outputs in index order — so results are
//! bit-identical to a sequential map at any budget, and the number of
//! spawned worker threads never exceeds the budget.

/// Balanced contiguous chunk bounds: at most `threads` non-empty
/// `(lo, hi)` ranges covering `0..n` in order.
pub(crate) fn chunk_bounds(n: usize, threads: usize) -> Vec<(usize, usize)> {
    let threads = threads.clamp(1, n.max(1));
    let base = n / threads;
    let rem = n % threads;
    let mut bounds = Vec::with_capacity(threads);
    let mut lo = 0;
    for i in 0..threads {
        let hi = lo + base + usize::from(i < rem);
        if hi > lo {
            bounds.push((lo, hi));
        }
        lo = hi;
    }
    bounds
}

/// Maps `f` over `0..n` using at most `threads` worker threads,
/// returning outputs in index order (identical to the sequential map).
pub(crate) fn map_chunked<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let bounds = chunk_bounds(n, threads);
    if bounds.len() <= 1 {
        return (0..n).map(f).collect();
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(lo, hi)| scope.spawn(move || (lo..hi).map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::with_capacity(n);
        for h in handles {
            out.extend(h.join().expect("sweep worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn bounds_cover_everything_in_order_without_overlap() {
        for n in [0usize, 1, 2, 5, 7, 16, 33] {
            for threads in [1usize, 2, 3, 4, 8, 64] {
                let bounds = chunk_bounds(n, threads);
                assert!(bounds.len() <= threads, "n={n} threads={threads}");
                assert!(bounds.len() <= n.max(1));
                let mut expect = 0;
                for &(lo, hi) in &bounds {
                    assert_eq!(lo, expect, "contiguous");
                    assert!(hi > lo, "non-empty");
                    expect = hi;
                }
                assert_eq!(expect, n, "full coverage");
            }
        }
    }

    #[test]
    fn chunked_map_matches_sequential() {
        for threads in [1usize, 2, 3, 7] {
            let got = map_chunked(11, threads, |i| i * i);
            let want: Vec<usize> = (0..11).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn concurrency_never_exceeds_budget() {
        // High-water mark of concurrently running closures: with a
        // budget of 2 and deliberately staggered work, it must never
        // exceed 2 even though there are 12 items.
        let running = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let _ = map_chunked(12, 2, |i| {
            let now = running.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(2 + (i % 3) as u64));
            running.fetch_sub(1, Ordering::SeqCst);
            i
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "budget of 2 exceeded");
    }
}
