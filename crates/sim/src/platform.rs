//! An online SC-platform day simulation.
//!
//! The sweep harness follows the paper's protocol (one batch per day).
//! This module adds the *online* dynamics the paper describes in its
//! setup — "a worker is online until the worker is assigned a task" —
//! as a discrete-hourly simulation: tasks arrive every hour, unassigned
//! tasks persist until they expire, and assigned workers leave the pool.
//! It powers the `day_in_the_life` example and gives integration tests a
//! stateful workload.
//!
//! Since PR 3 the hourly loop is a thin driver over
//! [`crate::online::OnlineEngine`] (frozen-pool configuration): the
//! engine owns the expiry/assign/retire ordering, which also fixed a
//! subtle accounting skew — a task that is already expired at its
//! arrival instant is now counted `expired` and never offered, exactly
//! like a carried-over task, so
//! `published == assigned + expired + still_open` holds by
//! construction.

use crate::event::EventKind;
use crate::online::{EngineBuilder, NetworkMode, PipelineMode};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use sc_assign::AlgorithmKind;
use sc_core::DitaPipeline;
use sc_datagen::{InstanceOptions, SyntheticDataset};
use sc_types::{Duration, Task, TaskId, TimeInstant, VenueId};

/// Configuration of an online day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DayConfig {
    /// Workers online at the start of the day.
    pub n_workers: usize,
    /// New tasks published at each hourly instance.
    pub tasks_per_hour: usize,
    /// First hour (inclusive) of platform operation.
    pub start_hour: i64,
    /// Last hour (exclusive).
    pub end_hour: i64,
    /// Task valid time and worker radius.
    pub options: InstanceOptions,
}

impl Default for DayConfig {
    fn default() -> Self {
        DayConfig {
            n_workers: 100,
            tasks_per_hour: 25,
            start_hour: 8,
            end_hour: 20,
            options: InstanceOptions::default(),
        }
    }
}

/// Outcome of one hourly assignment round.
#[derive(Debug, Clone, PartialEq)]
pub struct HourReport {
    /// Hour of day.
    pub hour: i64,
    /// Tasks available at this instance (new + carried over).
    pub available_tasks: usize,
    /// Workers still online.
    pub online_workers: usize,
    /// Tasks assigned this round.
    pub assigned: usize,
    /// Average influence of this round's assignment.
    pub ai: f64,
}

/// Outcome of the whole day.
#[derive(Debug, Clone, PartialEq)]
pub struct DayReport {
    /// Per-hour breakdown.
    pub hours: Vec<HourReport>,
    /// Total tasks published.
    pub published: usize,
    /// Total tasks assigned.
    pub assigned: usize,
    /// Tasks that expired unassigned.
    pub expired: usize,
    /// Tasks still open at close of day.
    pub still_open: usize,
}

impl DayReport {
    /// Fraction of published tasks that were assigned.
    pub fn assignment_rate(&self) -> f64 {
        if self.published == 0 {
            0.0
        } else {
            self.assigned as f64 / self.published as f64
        }
    }
}

/// Runs the online simulation of one day.
///
/// A thin driver over a frozen-mode engine
/// ([`PipelineMode::Frozen`] + [`NetworkMode::Fixed`]): the engine
/// borrows the pipeline zero-copy (no per-round maintenance — the
/// day-in-the-life workload matches the paper's trained-once setting),
/// the initial
/// worker cohort goes online at the first hour, and every hour
/// publishes `tasks_per_hour` tasks from random venues before the
/// engine runs its round. Deterministic in `(dataset seed, day)`.
pub fn simulate_day(
    dataset: &SyntheticDataset,
    pipeline: &DitaPipeline,
    day: usize,
    config: &DayConfig,
    algorithm: AlgorithmKind,
) -> DayReport {
    assert!(
        config.start_hour < config.end_hour,
        "empty operating window"
    );
    let mut rng = SmallRng::seed_from_u64(
        dataset.seed() ^ 0x00D_A11 ^ (day as u64).wrapping_mul(0x2545_F491_4F6C_DD1D),
    );

    let mut engine = EngineBuilder::new()
        .pipeline(PipelineMode::Frozen(pipeline))
        .network(NetworkMode::Fixed(&dataset.social))
        .build();

    // Initial online workers, sampled through the day-instance machinery
    // so locations match the dataset.
    let base = dataset.instance_for_day(day, 0, config.n_workers, config.options);
    for worker in base.instance.workers {
        engine.ingest(EventKind::WorkerArrival { worker });
    }

    let mut next_task_id = 0u32;
    let mut hours = Vec::new();

    for hour in config.start_hour..config.end_hour {
        let now = TimeInstant::at(day as i64, hour);

        // Publish this hour's tasks from random venues.
        for _ in 0..config.tasks_per_hour {
            let venue = dataset
                .venues
                .venue(VenueId::from(rng.random_range(0..dataset.venues.len())));
            engine.ingest(EventKind::TaskArrival {
                task: Task::with_categories(
                    TaskId::new(next_task_id),
                    venue.location,
                    now,
                    Duration::hours_f64(config.options.valid_hours),
                    venue.categories.clone(),
                ),
                venue: venue.id,
            });
            next_task_id += 1;
        }

        let round = engine.run_round(now, algorithm);
        hours.push(HourReport {
            hour,
            available_tasks: round.available_tasks,
            online_workers: round.online_workers,
            assigned: round.assigned,
            ai: round.ai,
        });
    }

    let summary = engine.summary();
    debug_assert_eq!(
        summary.published,
        summary.assigned + summary.expired + summary.still_open,
        "task conservation"
    );
    DayReport {
        hours,
        published: summary.published,
        assigned: summary.assigned,
        expired: summary.expired,
        still_open: summary.still_open,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::{DitaBuilder, DitaConfig};
    use sc_datagen::DatasetProfile;
    use sc_influence::RpoParams;

    fn setup() -> (SyntheticDataset, DitaPipeline) {
        let mut profile = DatasetProfile::brightkite_small();
        profile.n_workers = 100;
        profile.n_venues = 100;
        profile.checkins_per_worker = 10;
        let dataset = SyntheticDataset::generate(&profile, 4);
        let pipeline = DitaBuilder::new()
            .config(DitaConfig {
                n_topics: 5,
                lda_sweeps: 10,
                infer_sweeps: 5,
                rpo: RpoParams {
                    max_sets: 3_000,
                    ..Default::default()
                },
                seed: 2,
                ..Default::default()
            })
            .build(&dataset.social, &dataset.histories)
            .unwrap();
        (dataset, pipeline)
    }

    #[test]
    fn day_accounts_balance() {
        let (dataset, pipeline) = setup();
        let config = DayConfig {
            n_workers: 60,
            tasks_per_hour: 10,
            start_hour: 9,
            end_hour: 13,
            options: InstanceOptions::default(),
        };
        let report = simulate_day(&dataset, &pipeline, 0, &config, AlgorithmKind::Ia);
        assert_eq!(report.hours.len(), 4);
        assert_eq!(report.published, 40);
        assert_eq!(
            report.published,
            report.assigned + report.expired + report.still_open,
            "every published task is assigned, expired, or open"
        );
        assert!(report.assignment_rate() > 0.0);
    }

    #[test]
    fn workers_drain_as_they_are_assigned() {
        let (dataset, pipeline) = setup();
        let config = DayConfig {
            n_workers: 30,
            tasks_per_hour: 20,
            start_hour: 8,
            end_hour: 12,
            options: InstanceOptions::default(),
        };
        let report = simulate_day(&dataset, &pipeline, 1, &config, AlgorithmKind::Mta);
        let online: Vec<usize> = report.hours.iter().map(|h| h.online_workers).collect();
        for w in online.windows(2) {
            assert!(w[1] <= w[0], "online workers never increase: {online:?}");
        }
        // With 80 tasks and 30 workers, the pool must visibly shrink.
        assert!(online.last().unwrap() < &30);
        assert!(report.assigned <= 30, "each worker serves at most one task");
    }

    #[test]
    fn unassigned_tasks_carry_over() {
        let (dataset, pipeline) = setup();
        // Zero workers: nothing is ever assigned; tasks pile up and then
        // expire after φ hours.
        let config = DayConfig {
            n_workers: 0,
            tasks_per_hour: 5,
            start_hour: 8,
            end_hour: 16,
            options: InstanceOptions {
                valid_hours: 2.0,
                ..Default::default()
            },
        };
        let report = simulate_day(&dataset, &pipeline, 2, &config, AlgorithmKind::Ia);
        assert_eq!(report.assigned, 0);
        assert!(report.expired > 0);
        assert_eq!(report.published, 40);
        let available: Vec<usize> = report.hours.iter().map(|h| h.available_tasks).collect();
        // With φ = 2h, steady state carries ~2 extra batches.
        assert!(available.iter().max().unwrap() > &5);
    }

    #[test]
    fn same_hour_expiry_keeps_accounts_balanced() {
        // Regression: a task whose valid time ends within its arrival
        // hour must flow through the same expire-before-offer path as a
        // carried-over task. With φ = 0.5h and no workers, every task is
        // offered exactly once (its arrival hour) and expires at the
        // next round — the conservation invariant must hold exactly.
        let (dataset, pipeline) = setup();
        let config = DayConfig {
            n_workers: 0,
            tasks_per_hour: 6,
            start_hour: 8,
            end_hour: 14,
            options: InstanceOptions {
                valid_hours: 0.5,
                ..Default::default()
            },
        };
        let report = simulate_day(&dataset, &pipeline, 5, &config, AlgorithmKind::Ia);
        assert_eq!(report.published, 36);
        assert_eq!(report.assigned, 0);
        assert_eq!(
            report.published,
            report.assigned + report.expired + report.still_open,
            "published tasks must be conserved across assign/expire/open"
        );
        // Sub-hour tasks never carry over: each hour offers exactly the
        // fresh batch, and the final batch is the only one still open.
        for h in &report.hours {
            assert_eq!(h.available_tasks, 6, "hour {}: no stale carry-over", h.hour);
        }
        assert_eq!(report.still_open, 6);
        assert_eq!(report.expired, 30);
    }

    #[test]
    fn deterministic_given_day() {
        let (dataset, pipeline) = setup();
        let config = DayConfig::default();
        let a = simulate_day(&dataset, &pipeline, 3, &config, AlgorithmKind::Ia);
        let b = simulate_day(&dataset, &pipeline, 3, &config, AlgorithmKind::Ia);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty operating window")]
    fn inverted_hours_panic() {
        let (dataset, pipeline) = setup();
        let config = DayConfig {
            start_hour: 12,
            end_hour: 12,
            ..Default::default()
        };
        let _ = simulate_day(&dataset, &pipeline, 0, &config, AlgorithmKind::Ia);
    }
}
