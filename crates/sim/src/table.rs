//! Plain-text table rendering and CSV export for harness output.

/// Renders an aligned text table. The first row is the header.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(n_cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let parts: Vec<String> = cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        parts.join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n_cols.saturating_sub(1))));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders rows as CSV (header + comma-separated lines, quoting cells
/// that contain commas or quotes).
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    fn quote(cell: &str) -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let s = render_table(
            &["alg", "ai"],
            &[
                vec!["IA".into(), "0.25".into()],
                vec!["MTA".into(), "0.1".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("alg"));
        assert!(lines[2].ends_with("0.25"));
        // All rows have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn empty_rows_render_header_only() {
        let s = render_table(&["a"], &[]);
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn csv_basic() {
        let s = to_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(s, "a,b\n1,2\n");
    }

    #[test]
    fn csv_quotes_special_cells() {
        let s = to_csv(&["a"], &[vec!["x,y".into()], vec!["q\"z".into()]]);
        assert!(s.contains("\"x,y\""));
        assert!(s.contains("\"q\"\"z\""));
    }
}
