//! The unified event-ingestion surface of the online engine.
//!
//! Every mutation of an [`crate::OnlineEngine`]'s streaming state —
//! task postings, worker logins, mid-stream fold-ins, departures — is
//! one [`Event`]: a typed [`EventKind`] payload stamped with the
//! `(round, seq)` pair that totally orders it within the engine's
//! lifetime. [`crate::OnlineEngine::apply`] is the single entry point;
//! the legacy `task_arrives` / `worker_arrives` / `worker_arrives_new`
//! / `worker_departs` method family survives only as deprecated
//! wrappers over it.
//!
//! Events are serde-able, so the same type is the wire format of the
//! `dita serve` HTTP front (`sc-serve`), the replay driver's internal
//! currency, and the payload of scripted benchmark streams — one code
//! path for all three, which is what keeps the determinism contract
//! ("same event sequence ⇒ bit-identical [`crate::RoundReport`]s at
//! any thread count") enforceable.
//!
//! Every application returns an [`Outcome`]; rejections carry a
//! [`RejectReason`] instead of the silent `bool` drops of the old
//! surface.

use sc_types::{History, Task, VenueId, Worker, WorkerId};
use serde::{json::Value, Deserialize, Error, Serialize};

/// A totally ordered ingestion event: `kind` applied as the `seq`-th
/// event of round `round`.
///
/// [`crate::OnlineEngine::apply`] rejects an event whose `round` is not
/// the engine's current round ([`RejectReason::RoundMismatch`]) or
/// whose `seq` is not monotone within the round
/// ([`RejectReason::OutOfOrder`]) — replays and restores therefore
/// cannot silently reorder a stream. Drivers that generate events
/// in-process use [`crate::OnlineEngine::ingest`], which stamps the
/// pair automatically.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The engine round this event belongs to.
    pub round: u64,
    /// Position within the round (strictly increasing).
    pub seq: u64,
    /// The payload.
    pub kind: EventKind,
}

/// The typed payload of an [`Event`] — the four mutations the online
/// platform knows.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A task is posted at a venue (offered from the next round on,
    /// unless already expired at that round's instant).
    TaskArrival {
        /// The posted task.
        task: Task,
        /// The venue the task is anchored at (propagation site).
        venue: VenueId,
    },
    /// A trained worker comes online (or refreshes their state).
    WorkerArrival {
        /// The arriving worker.
        worker: Worker,
    },
    /// A worker the trained model has never seen arrives with social
    /// evidence, to be folded into the live influence network.
    WorkerNew {
        /// The arriving worker (id must be the next dense id).
        worker: Worker,
        /// Trained worker ids the arrival is befriended with.
        friends: Vec<WorkerId>,
        /// Check-in evidence observed so far.
        history: History,
    },
    /// An online worker logs off.
    WorkerDeparture {
        /// The departing worker's id.
        worker: WorkerId,
    },
}

impl EventKind {
    /// The wire tag of this kind (the `"type"` field of the JSON form).
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::TaskArrival { .. } => "task_arrival",
            EventKind::WorkerArrival { .. } => "worker_arrival",
            EventKind::WorkerNew { .. } => "worker_new",
            EventKind::WorkerDeparture { .. } => "worker_departure",
        }
    }

    /// The payload fields of the JSON form, in wire order, without the
    /// `"type"` tag (shared by the [`Event`] envelope).
    fn payload_fields(&self) -> Vec<(String, Value)> {
        let mut f = vec![("type".to_string(), Value::Str(self.tag().to_string()))];
        match self {
            EventKind::TaskArrival { task, venue } => {
                f.push(("task".to_string(), task.to_value()));
                f.push(("venue".to_string(), venue.to_value()));
            }
            EventKind::WorkerArrival { worker } => {
                f.push(("worker".to_string(), worker.to_value()));
            }
            EventKind::WorkerNew {
                worker,
                friends,
                history,
            } => {
                f.push(("worker".to_string(), worker.to_value()));
                f.push(("friends".to_string(), friends.to_value()));
                f.push(("history".to_string(), history.to_value()));
            }
            EventKind::WorkerDeparture { worker } => {
                f.push(("worker".to_string(), worker.to_value()));
            }
        }
        f
    }

    fn from_fields(obj: &[(String, Value)]) -> Result<Self, Error> {
        let tag: String = serde::get_field(obj, "type")?;
        match tag.as_str() {
            "task_arrival" => Ok(EventKind::TaskArrival {
                task: serde::get_field(obj, "task")?,
                venue: serde::get_field(obj, "venue")?,
            }),
            "worker_arrival" => Ok(EventKind::WorkerArrival {
                worker: serde::get_field(obj, "worker")?,
            }),
            "worker_new" => Ok(EventKind::WorkerNew {
                worker: serde::get_field(obj, "worker")?,
                friends: serde::get_field(obj, "friends")?,
                history: serde::get_field(obj, "history")?,
            }),
            "worker_departure" => Ok(EventKind::WorkerDeparture {
                worker: serde::get_field(obj, "worker")?,
            }),
            other => Err(Error::custom(format!("unknown event type `{other}`"))),
        }
    }
}

impl Serialize for EventKind {
    fn to_value(&self) -> Value {
        Value::Object(self.payload_fields())
    }
}

impl Deserialize for EventKind {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::expected("event object", value))?;
        EventKind::from_fields(obj)
    }
}

impl Serialize for Event {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("round".to_string(), self.round.to_value()),
            ("seq".to_string(), self.seq.to_value()),
        ];
        fields.extend(self.kind.payload_fields());
        Value::Object(fields)
    }
}

impl Deserialize for Event {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| Error::expected("event object", value))?;
        Ok(Event {
            round: serde::get_field(obj, "round")?,
            seq: serde::get_field(obj, "seq")?,
            kind: EventKind::from_fields(obj)?,
        })
    }
}

/// What applying one [`Event`] did — the explicit contract that
/// replaces the old `ArrivalOutcome` + `task_arrives: bool` +
/// `worker_departs: bool` trio. Nothing is dropped silently: every
/// refused event names its [`RejectReason`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A new task is open (offered from the next round on).
    TaskPublished,
    /// A re-arriving open task id was refreshed in place (published
    /// once; a duplicate would corrupt the conservation invariant).
    TaskRefreshed,
    /// A trained worker is newly online.
    WorkerJoined,
    /// An already-online worker's state was refreshed in place.
    WorkerRefreshed,
    /// A previously-unseen worker was folded into the live influence
    /// network — non-zero influence from the next round on, no retrain.
    WorkerFoldedIn,
    /// An online worker left the platform.
    WorkerDeparted,
    /// The event was refused; nothing changed.
    Rejected(RejectReason),
}

impl Outcome {
    /// The reason an event was refused, if it was.
    pub fn rejected_reason(self) -> Option<RejectReason> {
        match self {
            Outcome::Rejected(reason) => Some(reason),
            _ => None,
        }
    }

    /// Whether the event was refused.
    pub fn is_rejected(self) -> bool {
        matches!(self, Outcome::Rejected(_))
    }

    /// For worker events: whether the worker is online after the call.
    pub fn is_online(self) -> bool {
        matches!(
            self,
            Outcome::WorkerJoined | Outcome::WorkerRefreshed | Outcome::WorkerFoldedIn
        )
    }

    /// Whether the event added something that was not there before (a
    /// new open task or a newly online worker).
    pub fn is_new(self) -> bool {
        matches!(
            self,
            Outcome::TaskPublished | Outcome::WorkerJoined | Outcome::WorkerFoldedIn
        )
    }

    /// The wire label of this outcome.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::TaskPublished => "task_published",
            Outcome::TaskRefreshed => "task_refreshed",
            Outcome::WorkerJoined => "worker_joined",
            Outcome::WorkerRefreshed => "worker_refreshed",
            Outcome::WorkerFoldedIn => "worker_folded_in",
            Outcome::WorkerDeparted => "worker_departed",
            Outcome::Rejected(_) => "rejected",
        }
    }
}

impl Serialize for Outcome {
    fn to_value(&self) -> Value {
        match self {
            Outcome::Rejected(reason) => Value::Object(vec![(
                "rejected".to_string(),
                Value::Str(reason.label().to_string()),
            )]),
            other => Value::Str(other.label().to_string()),
        }
    }
}

/// Why an [`Event`] was refused. Every reason is a contract the engine
/// enforces instead of degrading silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// A plain arrival of a worker outside the trained population: the
    /// model cannot score them, so admitting them could only ever
    /// produce zero-influence assignments. Late arrivals with social
    /// evidence go through [`EventKind::WorkerNew`] instead.
    UnknownWorker,
    /// A [`EventKind::WorkerNew`] on an engine that borrows its
    /// pipeline or network (frozen / fixed-population modes, or a
    /// builder that disabled fold-in): the live model cannot grow.
    CannotFoldIn,
    /// A [`EventKind::WorkerNew`] whose id is not the next dense id —
    /// fold-ins assign dense ids in arrival order; a gap means the
    /// caller skipped an arrival.
    NonDenseId,
    /// A [`EventKind::WorkerNew`] with no usable friendships (none of
    /// the named friends is in the current population): with zero
    /// social edges the fold-in could never join an RRR set. The worker
    /// can re-arrive once a friend of theirs has been folded in.
    NoUsableFriends,
    /// A [`EventKind::WorkerDeparture`] for a worker that is not
    /// online.
    NotOnline,
    /// The event's `round` stamp is not the engine's current round.
    RoundMismatch,
    /// The event's `seq` stamp is not monotone within its round.
    OutOfOrder,
}

impl RejectReason {
    /// The wire label of this reason.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::UnknownWorker => "unknown_worker",
            RejectReason::CannotFoldIn => "cannot_fold_in",
            RejectReason::NonDenseId => "non_dense_id",
            RejectReason::NoUsableFriends => "no_usable_friends",
            RejectReason::NotOnline => "not_online",
            RejectReason::RoundMismatch => "round_mismatch",
            RejectReason::OutOfOrder => "out_of_order",
        }
    }
}

impl Serialize for RejectReason {
    fn to_value(&self) -> Value {
        Value::Str(self.label().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_types::{CategoryId, Duration, Location, TaskId, TimeInstant};

    fn sample_task() -> Task {
        Task::with_categories(
            TaskId::new(7),
            Location::new(1.5, -2.0),
            TimeInstant::at(0, 9),
            Duration::hours(3),
            vec![CategoryId::new(1), CategoryId::new(4)],
        )
    }

    #[test]
    fn event_roundtrips_through_json() {
        let events = vec![
            Event {
                round: 3,
                seq: 0,
                kind: EventKind::TaskArrival {
                    task: sample_task(),
                    venue: VenueId::new(12),
                },
            },
            Event {
                round: 3,
                seq: 1,
                kind: EventKind::WorkerArrival {
                    worker: Worker::new(WorkerId::new(4), Location::new(0.25, 0.5), 25.0),
                },
            },
            Event {
                round: 3,
                seq: 2,
                kind: EventKind::WorkerNew {
                    worker: Worker::new(WorkerId::new(100), Location::ORIGIN, 10.0),
                    friends: vec![WorkerId::new(1), WorkerId::new(2)],
                    history: History::new(),
                },
            },
            Event {
                round: 3,
                seq: 3,
                kind: EventKind::WorkerDeparture {
                    worker: WorkerId::new(4),
                },
            },
        ];
        for event in events {
            let json = serde_json::to_string(&event).unwrap();
            let back: Event = serde_json::from_str(&json).unwrap();
            assert_eq!(back, event, "wire round-trip must be lossless: {json}");
        }
    }

    #[test]
    fn bare_kind_parses_without_ordering_stamp() {
        // The HTTP front accepts bare kinds and stamps (round, seq) at
        // the queue, so `EventKind` must parse standalone.
        let json = serde_json::to_string(&EventKind::WorkerDeparture {
            worker: WorkerId::new(9),
        })
        .unwrap();
        let back: EventKind = serde_json::from_str(&json).unwrap();
        assert_eq!(
            back,
            EventKind::WorkerDeparture {
                worker: WorkerId::new(9)
            }
        );
    }

    #[test]
    fn unknown_event_type_is_an_error() {
        assert!(serde_json::from_str::<EventKind>(r#"{"type":"mystery"}"#).is_err());
    }

    #[test]
    fn outcome_helpers_classify() {
        assert!(Outcome::WorkerFoldedIn.is_online());
        assert!(Outcome::WorkerFoldedIn.is_new());
        assert!(!Outcome::WorkerRefreshed.is_new());
        assert!(Outcome::TaskPublished.is_new());
        assert!(!Outcome::TaskPublished.is_online());
        let r = Outcome::Rejected(RejectReason::NoUsableFriends);
        assert!(r.is_rejected() && !r.is_online() && !r.is_new());
        assert_eq!(r.rejected_reason(), Some(RejectReason::NoUsableFriends));
        assert_eq!(Outcome::WorkerDeparted.rejected_reason(), None);
        assert_eq!(
            serde_json::to_string(&r).unwrap(),
            r#"{"rejected":"no_usable_friends"}"#
        );
    }
}
