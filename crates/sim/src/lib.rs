//! # sc-sim — the SC-platform simulator and experiment harness
//!
//! Reproduces the evaluation protocol of paper Section V:
//!
//! * a synthetic dataset (BK- or FS-profile) stands in for the check-in
//!   datasets;
//! * the DITA pipeline is trained once per dataset;
//! * each experiment sweeps one parameter of Table II (|S|, |W|, φ, r)
//!   with the others at their defaults, runs the algorithms on the
//!   instances of 4 simulated days, and averages;
//! * metrics per algorithm: CPU time, number of assigned tasks, Average
//!   Influence (Eq. 6), Average Propagation (Eq. 7), and travel cost.
//!
//! The harness feeds the figure-regeneration binaries in `sc-bench`
//! (`fig05`–`fig16`) and prints the same series the paper plots.
//!
//! Beyond the paper's batch protocol, [`online::OnlineEngine`] serves
//! the *online* deployment mode: streaming task/worker arrivals,
//! per-round assignment, and bounded RRR-pool maintenance (rotation
//! instead of retraining). [`platform::simulate_day`] is a
//! day-in-the-life driver built on the engine, and [`replay::replay_day`]
//! drives it from a **real check-in trace** (`sc_datagen::ReplayStream`):
//! train on the trace's past, replay one day round by round, and fold
//! previously-unseen workers into the live influence network as they
//! first appear.
//!
//! All parallelism — sweep points across instances *and* the scoring
//! passes inside one instance — schedules through the workspace's
//! `sc_stats::par` chunked-shard scheduler under one budget
//! ([`Parallelism`], the CLI's `--threads`), with results bit-identical
//! at any thread count.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]

pub mod event;
pub mod harness;
pub mod metrics;
pub mod online;
pub mod platform;
pub mod replay;
pub mod snapshot;
pub mod sweep;
pub mod table;

pub use event::{Event, EventKind, Outcome, RejectReason};
pub use harness::{AblationPoint, ComparisonPoint, ExperimentRunner};
pub use metrics::MetricsRow;
#[allow(deprecated)]
pub use online::{scripted_arrival, ArrivalOutcome};
pub use online::{
    scripted_event, EngineBuilder, NetworkMode, OnlineEngine, OnlineSummary, PipelineMode,
    RoundReport,
};
pub use replay::{replay_day, ReplayReport, ReplayRoundOutcome, ReplayRun};
pub use sc_core::{OnlineConfig, Parallelism};
pub use snapshot::{
    load_snapshot, save_snapshot, snapshot_from_str, snapshot_to_string, SnapshotError,
    SNAPSHOT_VERSION,
};
pub use sweep::{ExperimentScale, SweepAxis, SweepValues};
pub use table::{render_table, to_csv};
