//! Versioned snapshot files for the online engine.
//!
//! A snapshot is the whole serving state of an [`OnlineEngine`] — the
//! trained pipeline (LDA, willingness, entropy, RRR pool with its
//! epoch window and stream base), the social network, and every
//! report-affecting counter — wrapped in a versioned JSON envelope:
//!
//! ```json
//! { "version": 1, "engine": { ... } }
//! ```
//!
//! The restore path rejects unknown versions outright instead of
//! guessing at field layouts. Restored engines own their pipeline and
//! network handles and emit **bit-identical** [`RoundReport`]s to the
//! uninterrupted original at any thread count — the round-trip test in
//! `crates/sim/tests/snapshot_roundtrip.rs` and the CI serve-smoke job
//! both pin this.
//!
//! [`RoundReport`]: crate::online::RoundReport

use crate::online::OnlineEngine;
use serde::json::Value;
use std::fmt;
use std::path::Path;

/// The snapshot format version this build writes and accepts.
pub const SNAPSHOT_VERSION: u64 = 1;

/// Why a snapshot could not be written or restored.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure (open, read, write).
    Io(std::io::Error),
    /// The file is not valid snapshot JSON.
    Parse(String),
    /// The envelope declares a version this build does not understand.
    Version(u64),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::Parse(msg) => write!(f, "snapshot parse error: {msg}"),
            SnapshotError::Version(v) => write!(
                f,
                "snapshot version {v} not supported (this build reads version {SNAPSHOT_VERSION})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Serializes an engine into the versioned envelope string.
pub fn snapshot_to_string(engine: &OnlineEngine<'_>) -> Result<String, SnapshotError> {
    let envelope = Value::Object(vec![
        (
            "version".to_string(),
            serde::Serialize::to_value(&SNAPSHOT_VERSION),
        ),
        ("engine".to_string(), serde::Serialize::to_value(engine)),
    ]);
    Ok(envelope.to_json_string())
}

/// Restores an engine from a versioned envelope string.
pub fn snapshot_from_str(text: &str) -> Result<OnlineEngine<'static>, SnapshotError> {
    let envelope: Value = serde::json::parse(text).map_err(SnapshotError::Parse)?;
    let obj = envelope
        .as_object()
        .ok_or_else(|| SnapshotError::Parse("snapshot is not a JSON object".to_string()))?;
    let version: u64 =
        serde::get_field(obj, "version").map_err(|e| SnapshotError::Parse(e.to_string()))?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::Version(version));
    }
    let engine = obj
        .iter()
        .find(|(k, _)| k == "engine")
        .map(|(_, v)| v)
        .ok_or_else(|| SnapshotError::Parse("snapshot has no `engine` field".to_string()))?;
    serde::Deserialize::from_value(engine).map_err(|e| SnapshotError::Parse(e.to_string()))
}

/// Writes an engine snapshot to `path` (atomically enough for the
/// serving loop: write to a sibling `.tmp`, then rename over).
pub fn save_snapshot(engine: &OnlineEngine<'_>, path: &Path) -> Result<(), SnapshotError> {
    let text = snapshot_to_string(engine)?;
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text.as_bytes())?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Restores an engine from a snapshot file written by [`save_snapshot`].
pub fn load_snapshot(path: &Path) -> Result<OnlineEngine<'static>, SnapshotError> {
    let text = std::fs::read_to_string(path)?;
    snapshot_from_str(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_version_is_rejected() {
        let err = snapshot_from_str("{\"version\": 99, \"engine\": {}}").unwrap_err();
        assert!(matches!(err, SnapshotError::Version(99)), "{err}");
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn malformed_text_is_a_parse_error() {
        assert!(matches!(
            snapshot_from_str("not json"),
            Err(SnapshotError::Parse(_))
        ));
        assert!(matches!(
            snapshot_from_str("[1, 2]"),
            Err(SnapshotError::Parse(_))
        ));
        assert!(matches!(
            snapshot_from_str("{\"version\": 1}"),
            Err(SnapshotError::Parse(_))
        ));
    }

    #[test]
    fn missing_file_is_io() {
        let err = load_snapshot(Path::new("/nonexistent/dita.snap")).unwrap_err();
        assert!(matches!(err, SnapshotError::Io(_)));
    }
}
