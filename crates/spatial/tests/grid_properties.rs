//! Property-based tests for the grid index: it must agree with brute force
//! on arbitrary point clouds, query centres, radii, and cell sizes.

use proptest::prelude::*;
use sc_spatial::GridIndex;
use sc_types::Location;

fn locations(n: usize) -> impl Strategy<Value = Vec<Location>> {
    prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 0..n)
        .prop_map(|v| v.into_iter().map(|(x, y)| Location::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn range_query_matches_brute_force(
        pts in locations(120),
        qx in -60.0f64..60.0,
        qy in -60.0f64..60.0,
        radius in 0.0f64..80.0,
        cell in 0.3f64..12.0,
    ) {
        let idx = GridIndex::build(&pts, cell);
        let centre = Location::new(qx, qy);
        let mut got = idx.within_radius(&centre, radius);
        got.sort_unstable();
        let mut expect: Vec<usize> = pts
            .iter()
            .enumerate()
            .filter(|(_, p)| p.distance_km(&centre) <= radius)
            .map(|(i, _)| i)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn nearest_matches_brute_force(
        pts in locations(80),
        qx in -100.0f64..100.0,
        qy in -100.0f64..100.0,
        cell in 0.5f64..10.0,
    ) {
        let idx = GridIndex::build(&pts, cell);
        let q = Location::new(qx, qy);
        let got = idx.nearest(&q);
        let expect = pts
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.distance_km(&q)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        match (got, expect) {
            (None, None) => {}
            (Some((gi, gd)), Some((ei, ed))) => {
                // Distances must agree exactly; the index may differ only if
                // distances tie.
                prop_assert!((gd - ed).abs() < 1e-9, "distance {gd} vs {ed}");
                if (gd - ed).abs() < 1e-12 && gi != ei {
                    prop_assert!((pts[gi].distance_km(&q) - ed).abs() < 1e-9);
                }
            }
            (g, e) => prop_assert!(false, "mismatch: {:?} vs {:?}", g, e),
        }
    }

    #[test]
    fn count_is_monotone_in_radius(
        pts in locations(60),
        qx in -50.0f64..50.0,
        qy in -50.0f64..50.0,
        r1 in 0.0f64..40.0,
        dr in 0.0f64..40.0,
    ) {
        let idx = GridIndex::build(&pts, 2.0);
        let q = Location::new(qx, qy);
        prop_assert!(idx.count_within(&q, r1) <= idx.count_within(&q, r1 + dr));
    }
}
