//! Axis-aligned bounding boxes.

use sc_types::Location;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle in the planar world, in km.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Minimum corner (south-west).
    pub min: Location,
    /// Maximum corner (north-east).
    pub max: Location,
}

impl BoundingBox {
    /// Creates a box from two corners, normalizing their order.
    pub fn new(a: Location, b: Location) -> Self {
        BoundingBox {
            min: Location::new(a.x.min(b.x), a.y.min(b.y)),
            max: Location::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The empty box (inverted bounds); [`BoundingBox::extend`] grows it.
    pub fn empty() -> Self {
        BoundingBox {
            min: Location::new(f64::INFINITY, f64::INFINITY),
            max: Location::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Smallest box containing all `points`; `None` when `points` is empty.
    pub fn of_points<'a>(points: impl IntoIterator<Item = &'a Location>) -> Option<Self> {
        let mut bb = BoundingBox::empty();
        let mut any = false;
        for p in points {
            bb.extend(p);
            any = true;
        }
        any.then_some(bb)
    }

    /// Grows the box to include `p`.
    pub fn extend(&mut self, p: &Location) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// Whether `p` lies inside (inclusive).
    #[inline]
    pub fn contains(&self, p: &Location) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Width in km (zero for the empty box).
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max.x - self.min.x).max(0.0)
    }

    /// Height in km (zero for the empty box).
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max.y - self.min.y).max(0.0)
    }

    /// Whether this box intersects the circle centred at `c` with radius `r`.
    /// Used to prune grid cells during range queries.
    pub fn intersects_circle(&self, c: &Location, r: f64) -> bool {
        let nearest = Location::new(
            c.x.clamp(self.min.x, self.max.x),
            c.y.clamp(self.min.y, self.max.y),
        );
        nearest.distance_sq(c) <= r * r
    }

    /// Minimum distance from `p` to any point of the box (zero if inside).
    pub fn min_distance(&self, p: &Location) -> f64 {
        let nearest = Location::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        );
        nearest.distance_km(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_normalize() {
        let bb = BoundingBox::new(Location::new(5.0, -1.0), Location::new(-2.0, 3.0));
        assert_eq!(bb.min, Location::new(-2.0, -1.0));
        assert_eq!(bb.max, Location::new(5.0, 3.0));
        assert_eq!(bb.width(), 7.0);
        assert_eq!(bb.height(), 4.0);
    }

    #[test]
    fn containment_is_inclusive() {
        let bb = BoundingBox::new(Location::ORIGIN, Location::new(1.0, 1.0));
        assert!(bb.contains(&Location::new(0.0, 0.0)));
        assert!(bb.contains(&Location::new(1.0, 1.0)));
        assert!(bb.contains(&Location::new(0.5, 0.5)));
        assert!(!bb.contains(&Location::new(1.0001, 0.5)));
    }

    #[test]
    fn of_points_covers_all() {
        let pts = [
            Location::new(0.0, 0.0),
            Location::new(3.0, -2.0),
            Location::new(-1.0, 4.0),
        ];
        let bb = BoundingBox::of_points(pts.iter()).unwrap();
        for p in &pts {
            assert!(bb.contains(p));
        }
        assert!(BoundingBox::of_points(std::iter::empty()).is_none());
    }

    #[test]
    fn circle_intersection() {
        let bb = BoundingBox::new(Location::ORIGIN, Location::new(1.0, 1.0));
        // circle centre inside
        assert!(bb.intersects_circle(&Location::new(0.5, 0.5), 0.1));
        // circle touching the corner diagonally
        assert!(bb.intersects_circle(&Location::new(2.0, 2.0), std::f64::consts::SQRT_2 + 1e-9));
        // circle too far
        assert!(!bb.intersects_circle(&Location::new(2.0, 2.0), 1.0));
    }

    #[test]
    fn min_distance_zero_inside() {
        let bb = BoundingBox::new(Location::ORIGIN, Location::new(2.0, 2.0));
        assert_eq!(bb.min_distance(&Location::new(1.0, 1.0)), 0.0);
        assert!((bb.min_distance(&Location::new(5.0, 2.0)) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_box_has_zero_extent() {
        let bb = BoundingBox::empty();
        assert_eq!(bb.width(), 0.0);
        assert_eq!(bb.height(), 0.0);
        assert!(!bb.contains(&Location::ORIGIN));
    }
}
