//! Uniform grid index over points.
//!
//! The index partitions the bounding box of the input points into square
//! cells of a configurable size and answers:
//!
//! * [`GridIndex::within_radius`] — all points inside a circle (the
//!   worker-reachability query of the assignment-graph construction), and
//! * [`GridIndex::nearest`] — the nearest point to a query (used by the
//!   nearest-worker greedy baseline of the paper's running example).
//!
//! Points are referenced by the dense `usize` position they had in the
//! input slice, so callers can map hits back to workers/tasks without a
//! hash lookup.

use crate::bbox::BoundingBox;
use sc_types::Location;

/// A uniform grid over a fixed set of points.
#[derive(Debug, Clone)]
pub struct GridIndex {
    bbox: BoundingBox,
    cell_km: f64,
    cols: usize,
    rows: usize,
    /// CSR layout: `starts[c]..starts[c+1]` indexes into `entries` for cell c.
    starts: Vec<u32>,
    entries: Vec<u32>,
    points: Vec<Location>,
}

impl GridIndex {
    /// Builds an index over `points` with the given cell edge length in km.
    ///
    /// `cell_km` must be positive; degenerate inputs (no points) yield an
    /// index that answers every query with no results.
    pub fn build(points: &[Location], cell_km: f64) -> Self {
        assert!(cell_km > 0.0, "cell size must be positive");
        let bbox = BoundingBox::of_points(points.iter())
            .unwrap_or_else(|| BoundingBox::new(Location::ORIGIN, Location::ORIGIN));
        let cols = ((bbox.width() / cell_km).ceil() as usize).max(1);
        let rows = ((bbox.height() / cell_km).ceil() as usize).max(1);
        let n_cells = cols * rows;

        // Counting sort of points into cells (CSR construction).
        let mut counts = vec![0u32; n_cells + 1];
        let cell_of = |p: &Location| -> usize {
            let cx = (((p.x - bbox.min.x) / cell_km) as usize).min(cols - 1);
            let cy = (((p.y - bbox.min.y) / cell_km) as usize).min(rows - 1);
            cy * cols + cx
        };
        for p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 0..n_cells {
            counts[i + 1] += counts[i];
        }
        let starts = counts.clone();
        let mut cursor = counts;
        let mut entries = vec![0u32; points.len()];
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            entries[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }

        GridIndex {
            bbox,
            cell_km,
            cols,
            rows,
            starts,
            entries,
            points: points.to_vec(),
        }
    }

    /// Number of indexed points.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the index holds no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The cell edge length in km.
    #[inline]
    pub fn cell_km(&self) -> f64 {
        self.cell_km
    }

    /// Grid dimensions `(cols, rows)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    fn cell_range(&self, centre: &Location, radius: f64) -> (usize, usize, usize, usize) {
        let clamp_col = |v: f64| -> usize {
            (((v - self.bbox.min.x) / self.cell_km).floor().max(0.0) as usize).min(self.cols - 1)
        };
        let clamp_row = |v: f64| -> usize {
            (((v - self.bbox.min.y) / self.cell_km).floor().max(0.0) as usize).min(self.rows - 1)
        };
        (
            clamp_col(centre.x - radius),
            clamp_col(centre.x + radius),
            clamp_row(centre.y - radius),
            clamp_row(centre.y + radius),
        )
    }

    /// Indices (input positions) of all points with
    /// `d(point, centre) ≤ radius`, in ascending index order within cells.
    pub fn within_radius(&self, centre: &Location, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_within(centre, radius, |i, _| out.push(i));
        out
    }

    /// Visits every point inside the circle without allocating.
    pub fn for_each_within<F: FnMut(usize, &Location)>(
        &self,
        centre: &Location,
        radius: f64,
        mut visit: F,
    ) {
        if self.points.is_empty() || radius < 0.0 {
            return;
        }
        let r_sq = radius * radius;
        let (c0, c1, r0, r1) = self.cell_range(centre, radius);
        for row in r0..=r1 {
            for col in c0..=c1 {
                let cell = row * self.cols + col;
                let lo = self.starts[cell] as usize;
                let hi = self.starts[cell + 1] as usize;
                for &e in &self.entries[lo..hi] {
                    let p = &self.points[e as usize];
                    if p.distance_sq(centre) <= r_sq {
                        visit(e as usize, p);
                    }
                }
            }
        }
    }

    /// Number of points within the circle (no allocation).
    pub fn count_within(&self, centre: &Location, radius: f64) -> usize {
        let mut n = 0;
        self.for_each_within(centre, radius, |_, _| n += 1);
        n
    }

    /// The indexed point nearest to `query`, as `(input index, distance)`.
    /// `None` when the index is empty. Ties break to the lower index.
    pub fn nearest(&self, query: &Location) -> Option<(usize, f64)> {
        if self.points.is_empty() {
            return None;
        }
        // Expanding ring search: try growing radii until a hit is found,
        // then verify with one final pass at the found distance (a point in
        // a farther cell can still be closer than one in a near cell).
        let mut radius = self.cell_km;
        let max_span = (self.bbox.width() + self.bbox.height() + self.cell_km) * 2.0
            + self.bbox.min_distance(query) * 2.0;
        loop {
            let mut best: Option<(usize, f64)> = None;
            self.for_each_within(query, radius, |i, p| {
                let d = p.distance_km(query);
                match best {
                    Some((bi, bd)) if d > bd || (d == bd && i > bi) => {}
                    _ => best = Some((i, d)),
                }
            });
            if let Some((i, d)) = best {
                if d <= radius {
                    return Some((i, d));
                }
            }
            if radius > max_span {
                // Fall back to a full scan (handles far-outside queries).
                return self
                    .points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, p.distance_km(query)))
                    .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            }
            radius *= 2.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points() -> Vec<Location> {
        // 5x5 lattice with 1 km spacing.
        let mut pts = Vec::new();
        for y in 0..5 {
            for x in 0..5 {
                pts.push(Location::new(x as f64, y as f64));
            }
        }
        pts
    }

    #[test]
    fn within_radius_matches_brute_force() {
        let pts = grid_points();
        let idx = GridIndex::build(&pts, 0.8);
        let centre = Location::new(2.2, 1.9);
        for radius in [0.0, 0.5, 1.0, 2.5, 10.0] {
            let mut expect: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.distance_km(&centre) <= radius)
                .map(|(i, _)| i)
                .collect();
            let mut got = idx.within_radius(&centre, radius);
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "radius {radius}");
        }
    }

    #[test]
    fn count_within_agrees_with_query() {
        let pts = grid_points();
        let idx = GridIndex::build(&pts, 1.5);
        let centre = Location::new(0.0, 0.0);
        assert_eq!(
            idx.count_within(&centre, 1.0),
            idx.within_radius(&centre, 1.0).len()
        );
    }

    #[test]
    fn boundary_points_are_inclusive() {
        let pts = vec![Location::new(0.0, 0.0), Location::new(3.0, 4.0)];
        let idx = GridIndex::build(&pts, 1.0);
        // distance exactly 5.0
        let hits = idx.within_radius(&Location::new(0.0, 0.0), 5.0);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn nearest_finds_true_minimum() {
        let pts = grid_points();
        let idx = GridIndex::build(&pts, 1.0);
        let (i, d) = idx.nearest(&Location::new(3.4, 2.6)).unwrap();
        assert_eq!(pts[i], Location::new(3.0, 3.0));
        assert!((d - pts[i].distance_km(&Location::new(3.4, 2.6))).abs() < 1e-12);
    }

    #[test]
    fn nearest_far_outside_bbox() {
        let pts = grid_points();
        let idx = GridIndex::build(&pts, 1.0);
        let (i, _) = idx.nearest(&Location::new(100.0, 100.0)).unwrap();
        assert_eq!(pts[i], Location::new(4.0, 4.0));
    }

    #[test]
    fn nearest_breaks_ties_to_lower_index() {
        let pts = vec![Location::new(1.0, 0.0), Location::new(-1.0, 0.0)];
        let idx = GridIndex::build(&pts, 1.0);
        let (i, d) = idx.nearest(&Location::ORIGIN).unwrap();
        assert_eq!(i, 0);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_index_behaviour() {
        let idx = GridIndex::build(&[], 1.0);
        assert!(idx.is_empty());
        assert!(idx.nearest(&Location::ORIGIN).is_none());
        assert!(idx.within_radius(&Location::ORIGIN, 10.0).is_empty());
    }

    #[test]
    fn single_point_and_coincident_points() {
        let pts = vec![Location::new(1.0, 1.0); 3];
        let idx = GridIndex::build(&pts, 0.5);
        assert_eq!(idx.within_radius(&Location::new(1.0, 1.0), 0.0).len(), 3);
        let (i, d) = idx.nearest(&Location::new(2.0, 1.0)).unwrap();
        assert_eq!(i, 0);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_radius_yields_nothing() {
        let idx = GridIndex::build(&grid_points(), 1.0);
        assert!(idx.within_radius(&Location::ORIGIN, -1.0).is_empty());
    }

    #[test]
    fn dims_reflect_cell_size() {
        let idx = GridIndex::build(&grid_points(), 2.0); // 4km x 4km extent
        let (cols, rows) = idx.dims();
        assert_eq!((cols, rows), (2, 2));
        assert_eq!(idx.len(), 25);
        assert_eq!(idx.cell_km(), 2.0);
    }
}
