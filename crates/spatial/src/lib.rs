//! # sc-spatial — geometry and spatial-index substrate
//!
//! The assignment-graph construction (paper Section IV-A) needs, for every
//! worker, the set of tasks inside the worker's reachable circle. Scanning
//! all `|W|·|S|` pairs is quadratic; this crate provides a uniform
//! [`GridIndex`] so eligibility queries are proportional to the number of
//! candidates actually inside the circle.
//!
//! The crate also hosts the distance metrics: the paper uses planar
//! Euclidean distance throughout; [`haversine_km`] is provided for users
//! who feed real WGS84 check-in data, together with a local
//! equirectangular [`Projector`] that maps lat/lon onto the planar world
//! used by the rest of the workspace.

#![deny(missing_docs)]
#![warn(clippy::all)]
#![forbid(unsafe_code)]

pub mod bbox;
pub mod grid;
pub mod metric;
pub mod project;

pub use bbox::BoundingBox;
pub use grid::GridIndex;
pub use metric::{euclidean_km, haversine_km, travel_seconds};
pub use project::Projector;
