//! Local equirectangular projection.
//!
//! Real check-in datasets (Brightkite, FourSquare) store WGS84 latitude /
//! longitude. The workspace operates on a planar world in km, so loaders
//! project coordinates with a local equirectangular projection anchored at
//! a reference point — accurate to well under 1 % for the city/region
//! scales the experiments use.

use crate::metric::EARTH_RADIUS_KM;
use sc_types::Location;

/// A local equirectangular projector anchored at a reference lat/lon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Projector {
    ref_lat_rad: f64,
    ref_lon_rad: f64,
    cos_ref_lat: f64,
}

impl Projector {
    /// Creates a projector anchored at `(lat, lon)` in degrees.
    pub fn new(ref_lat_deg: f64, ref_lon_deg: f64) -> Self {
        let ref_lat_rad = ref_lat_deg.to_radians();
        Projector {
            ref_lat_rad,
            ref_lon_rad: ref_lon_deg.to_radians(),
            cos_ref_lat: ref_lat_rad.cos(),
        }
    }

    /// Projects `(lat, lon)` in degrees to planar km relative to the anchor.
    pub fn to_plane(&self, lat_deg: f64, lon_deg: f64) -> Location {
        let lat = lat_deg.to_radians();
        let lon = lon_deg.to_radians();
        Location::new(
            EARTH_RADIUS_KM * (lon - self.ref_lon_rad) * self.cos_ref_lat,
            EARTH_RADIUS_KM * (lat - self.ref_lat_rad),
        )
    }

    /// Inverse projection: planar km back to `(lat, lon)` degrees.
    pub fn to_wgs84(&self, p: &Location) -> (f64, f64) {
        let lat = self.ref_lat_rad + p.y / EARTH_RADIUS_KM;
        let lon = self.ref_lon_rad + p.x / (EARTH_RADIUS_KM * self.cos_ref_lat);
        (lat.to_degrees(), lon.to_degrees())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::haversine_km;

    #[test]
    fn anchor_maps_to_origin() {
        let p = Projector::new(40.0, -74.0);
        let loc = p.to_plane(40.0, -74.0);
        assert!(loc.distance_km(&Location::ORIGIN) < 1e-9);
    }

    #[test]
    fn roundtrip_is_identity() {
        let p = Projector::new(37.77, -122.42);
        let loc = p.to_plane(37.80, -122.30);
        let (lat, lon) = p.to_wgs84(&loc);
        assert!((lat - 37.80).abs() < 1e-9);
        assert!((lon - (-122.30)).abs() < 1e-9);
    }

    #[test]
    fn planar_distance_approximates_haversine_locally() {
        let p = Projector::new(48.8566, 2.3522); // Paris
        let a_geo = Location::new(48.8566, 2.3522);
        let b_geo = Location::new(48.90, 2.40); // a few km away
        let a = p.to_plane(a_geo.x, a_geo.y);
        let b = p.to_plane(b_geo.x, b_geo.y);
        let planar = a.distance_km(&b);
        let sphere = haversine_km(&a_geo, &b_geo);
        assert!(
            (planar - sphere).abs() / sphere < 0.01,
            "planar {planar} vs sphere {sphere}"
        );
    }

    #[test]
    fn north_is_positive_y_east_positive_x() {
        let p = Projector::new(0.0, 0.0);
        let north = p.to_plane(1.0, 0.0);
        let east = p.to_plane(0.0, 1.0);
        assert!(north.y > 0.0 && north.x.abs() < 1e-9);
        assert!(east.x > 0.0 && east.y.abs() < 1e-9);
    }
}
