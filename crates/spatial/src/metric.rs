//! Distance metrics and the travel-time model.

use sc_types::Location;

/// Mean Earth radius in km (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Planar Euclidean distance in km — the paper's `d(w.l, s.l)`.
#[inline]
pub fn euclidean_km(a: &Location, b: &Location) -> f64 {
    a.distance_km(b)
}

/// Great-circle distance between two WGS84 coordinates, in km.
/// `a` and `b` carry `(lat, lon)` in degrees in their `(x, y)` fields.
/// Provided for users feeding real check-in data; the synthetic world is
/// planar and uses [`euclidean_km`].
pub fn haversine_km(a: &Location, b: &Location) -> f64 {
    let (lat1, lon1) = (a.x.to_radians(), a.y.to_radians());
    let (lat2, lon2) = (b.x.to_radians(), b.y.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().min(1.0).asin()
}

/// Travel time in seconds for `distance_km` at `speed_kmh`
/// (`t(w.l, s.l)` with the paper's uniform-speed assumption).
#[inline]
pub fn travel_seconds(distance_km: f64, speed_kmh: f64) -> f64 {
    debug_assert!(speed_kmh > 0.0, "speed must be positive");
    distance_km / speed_kmh * 3_600.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_matches_location_method() {
        let a = Location::new(0.0, 0.0);
        let b = Location::new(6.0, 8.0);
        assert_eq!(euclidean_km(&a, &b), 10.0);
    }

    #[test]
    fn haversine_known_pairs() {
        // Paris (48.8566, 2.3522) to London (51.5074, -0.1278): ~343.5 km.
        let paris = Location::new(48.8566, 2.3522);
        let london = Location::new(51.5074, -0.1278);
        let d = haversine_km(&paris, &london);
        assert!((d - 343.5).abs() < 2.0, "got {d}");
        // Symmetry and identity.
        assert!((haversine_km(&london, &paris) - d).abs() < 1e-9);
        assert!(haversine_km(&paris, &paris) < 1e-9);
    }

    #[test]
    fn haversine_quarter_meridian() {
        // Equator to pole along a meridian is a quarter of a great circle.
        let equator = Location::new(0.0, 0.0);
        let pole = Location::new(90.0, 0.0);
        let quarter = std::f64::consts::FRAC_PI_2 * EARTH_RADIUS_KM;
        assert!((haversine_km(&equator, &pole) - quarter).abs() < 1e-6);
    }

    #[test]
    fn travel_time_at_paper_speed() {
        // 25 km at 5 km/h = 5 hours.
        assert!((travel_seconds(25.0, 5.0) - 5.0 * 3_600.0).abs() < 1e-9);
        assert_eq!(travel_seconds(0.0, 5.0), 0.0);
    }
}
