//! End-to-end smoke of the serving surface over real sockets: every
//! endpoint, queue backpressure, and the snapshot/restore contract —
//! a restored process must answer `GET /report` byte-for-byte like the
//! uninterrupted original after serving the same remaining stream.

use sc_core::{DitaBuilder, DitaConfig, OnlineConfig, Parallelism};
use sc_datagen::{DatasetProfile, InstanceOptions, SyntheticDataset};
use sc_influence::RpoParams;
use sc_serve::{ServeConfig, Server};
use sc_sim::{
    load_snapshot, scripted_event, EngineBuilder, EventKind, NetworkMode, OnlineEngine,
    PipelineMode,
};
use sc_types::TimeInstant;
use serde::json::Value;
use serde::Serialize as _;
use std::net::SocketAddr;

fn dataset() -> SyntheticDataset {
    let mut profile = DatasetProfile::brightkite_small();
    profile.n_workers = 60;
    profile.n_venues = 60;
    profile.checkins_per_worker = 8;
    SyntheticDataset::generate(&profile, 41)
}

fn engine(data: &SyntheticDataset) -> OnlineEngine<'static> {
    let pipeline = DitaBuilder::new()
        .config(DitaConfig {
            n_topics: 4,
            lda_sweeps: 8,
            infer_sweeps: 4,
            rpo: RpoParams {
                max_sets: 2_000,
                threads: Parallelism::Single,
                ..Default::default()
            },
            online: OnlineConfig {
                round_hours: 1,
                growth_cap: 256,
                eviction_horizon: 3,
                target_sets: 0,
                incremental: true,
            },
            solver: Default::default(),
            seed: 5,
        })
        .build(&data.social, &data.histories)
        .unwrap();
    EngineBuilder::new()
        .pipeline(PipelineMode::Owned(Box::new(pipeline)))
        .network(NetworkMode::Adaptive(Box::new(data.social.clone())))
        .build()
}

/// One request over a fresh connection; returns `(status, body)`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    sc_serve::client::request(addr, method, path, body).expect("request")
}

fn events_json(events: &[EventKind]) -> String {
    Value::Array(events.iter().map(|e| e.to_value()).collect()).to_json_string()
}

fn cohort_events(data: &SyntheticDataset, day: usize) -> Vec<EventKind> {
    data.instance_for_day(day, 0, 25, InstanceOptions::default())
        .instance
        .workers
        .into_iter()
        .map(|worker| EventKind::WorkerArrival { worker })
        .collect()
}

#[test]
fn endpoints_answer_and_backpressure_bites() {
    let data = dataset();
    let server = Server::start(
        engine(&data),
        ServeConfig {
            queue_cap: 8,
            http_threads: 3,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    let (status, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"ok\":true"), "{body}");

    // A batch of five fits under the cap of eight…
    let now = TimeInstant::at(0, 9);
    let batch: Vec<EventKind> = (0..5u32)
        .map(|i| scripted_event(&data, 13, i, now, 2.0))
        .collect();
    let (status, body) = request(addr, "POST", "/events", &events_json(&batch));
    assert_eq!(status, 202, "{body}");
    assert!(body.contains("\"accepted\":5"), "{body}");

    // …a second batch of five would overflow it: refused whole.
    let (status, body) = request(addr, "POST", "/events", &events_json(&batch));
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("queue full"), "{body}");
    assert_eq!(server.queued_events(), 5, "refused batch must not enqueue");

    // A single bare event object (not an array) is accepted too.
    let solo = scripted_event(&data, 13, 90, now, 2.0);
    let (status, body) = request(addr, "POST", "/events", &solo.to_value().to_json_string());
    assert_eq!(status, 202, "{body}");

    let (status, body) = request(addr, "POST", "/round", "{\"day\": 0, \"hour\": 9}");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"applied\":6"), "{body}");
    assert!(body.contains("\"report\":"), "{body}");
    assert_eq!(server.queued_events(), 0, "round must drain the queue");

    let (status, body) = request(addr, "GET", "/report", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"rounds\":1"), "{body}");
    assert!(body.contains("\"summary\":"), "{body}");

    // Error surface: wrong method, unknown path, malformed bodies.
    assert_eq!(request(addr, "GET", "/events", "").0, 405);
    assert_eq!(request(addr, "POST", "/healthz", "").0, 405);
    assert_eq!(request(addr, "GET", "/nope", "").0, 404);
    assert_eq!(request(addr, "POST", "/events", "not json").0, 400);
    assert_eq!(request(addr, "POST", "/round", "{\"day\": 0}").0, 400);
    assert_eq!(
        request(
            addr,
            "POST",
            "/round",
            "{\"day\":0,\"hour\":9,\"algorithm\":\"nope\"}"
        )
        .0,
        400
    );
    let (status, body) = request(addr, "POST", "/snapshot", "");
    assert_eq!(
        status, 400,
        "unconfigured snapshot path must refuse: {body}"
    );

    server.shutdown();
}

#[test]
fn restored_server_reports_byte_identically() {
    let data = dataset();
    let dir = std::env::temp_dir().join(format!("dita-serve-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("engine.snapshot.json");

    let server = Server::start(
        engine(&data),
        ServeConfig {
            snapshot_path: Some(snap.clone()),
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Day 0: a worker cohort plus scripted tasks, one served round.
    let mut day0 = cohort_events(&data, 0);
    day0.extend((0..6u32).map(|i| scripted_event(&data, 13, i, TimeInstant::at(0, 9), 2.0)));
    let (status, _) = request(addr, "POST", "/events", &events_json(&day0));
    assert_eq!(status, 202);
    let (status, _) = request(addr, "POST", "/round", "{\"day\": 0, \"hour\": 9}");
    assert_eq!(status, 200);

    // Queue more events, then snapshot mid-stream: the queued events
    // must be folded into the engine before the file is written.
    let tail: Vec<EventKind> = (6..9u32)
        .map(|i| scripted_event(&data, 13, i, TimeInstant::at(0, 10), 2.0))
        .collect();
    let (status, _) = request(addr, "POST", "/events", &events_json(&tail));
    assert_eq!(status, 202);
    let (status, body) = request(addr, "POST", "/snapshot", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"events_folded\":3"), "{body}");

    // The original keeps serving: one more round, then its report.
    let (status, _) = request(addr, "POST", "/round", "{\"day\": 0, \"hour\": 10}");
    assert_eq!(status, 200);
    let (_, original_report) = request(addr, "GET", "/report", "");
    server.shutdown();

    // A new process restores the snapshot (different thread count on
    // purpose) and serves the same remaining stream.
    let restored = load_snapshot(&snap).expect("restore snapshot");
    let server = Server::start(
        restored,
        ServeConfig {
            http_threads: 4,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let (status, _) = request(addr, "POST", "/round", "{\"day\": 0, \"hour\": 10}");
    assert_eq!(status, 200);
    let (_, restored_report) = request(addr, "GET", "/report", "");
    server.shutdown();

    assert_eq!(
        original_report, restored_report,
        "restored serve process must report byte-for-byte like the original"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
