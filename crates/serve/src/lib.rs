//! `sc-serve` — the online-serving front of the DITA reproduction.
//!
//! This crate turns the [`sc_sim::OnlineEngine`] into a long-lived
//! process (`dita serve`) with a unified event-ingestion API:
//!
//! | Method | Path        | Purpose                                            |
//! |--------|-------------|----------------------------------------------------|
//! | `GET`  | `/healthz`  | Liveness + queue depth (never touches the engine)  |
//! | `POST` | `/events`   | Enqueue a batch of [`sc_sim::EventKind`]s (or 429) |
//! | `POST` | `/round`    | Drain the queue, close the round, return the report|
//! | `GET`  | `/report`   | Rounds served, lifetime summary, last round        |
//! | `POST` | `/snapshot` | Fold queued events in, write the versioned snapshot|
//!
//! Everything is hand-rolled over [`std::net`] — the workspace builds
//! offline, so [`http`] implements the needed HTTP/1.1 slice and
//! [`server`] the bounded-queue/thread-pool process around it. The
//! determinism contract carries over the wire: events are applied in
//! one total `(round, seq)` order regardless of how many HTTP threads
//! accepted them, so a snapshot-restored process reports byte-for-byte
//! what the uninterrupted one would.

#![forbid(unsafe_code)]

pub mod client;
pub mod http;
pub mod server;

pub use http::{read_request, write_response, Request, MAX_BODY_BYTES};
pub use server::{parse_algorithm, ServeConfig, Server};
