//! A deliberately minimal HTTP/1.1 front for the serving loop.
//!
//! The workspace builds offline, so there is no HTTP dependency to
//! lean on; this module implements exactly the slice of RFC 9112 the
//! `dita serve` endpoints need — request line, headers,
//! `Content-Length`-delimited bodies, and `Connection: close`
//! responses — over blocking [`std::net::TcpStream`]s. Every response
//! closes the connection: the clients of this surface (the CI smoke
//! job's `curl` loop, the round-trip tests) speak one request per
//! connection, which keeps the worker pool free of keep-alive
//! bookkeeping.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Longest accepted request body. Snapshot-sized engines travel the
/// other way (responses), so event batches are the only large bodies;
/// 16 MiB is orders of magnitude above any sane batch.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Longest accepted single header line, and cap on their count.
const MAX_HEADER_BYTES: usize = 8 * 1024;
const MAX_HEADERS: usize = 64;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Request path, query string included, undecoded.
    pub path: String,
    /// The body (empty when no `Content-Length` was sent).
    pub body: String,
}

/// Reads one request off the stream. `Ok(None)` means the peer closed
/// the connection before sending a request line.
pub fn read_request(stream: &mut TcpStream) -> std::io::Result<Option<Request>> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_uppercase(), p.to_string()),
        _ => {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed request line: {line:?}"),
            ))
        }
    };

    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Ok(None); // peer hung up mid-headers
        }
        if header.len() > MAX_HEADER_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "header line too long",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            let mut body = String::new();
            if content_length > 0 {
                let mut buf = vec![0u8; content_length];
                reader.read_exact(&mut buf)?;
                body = String::from_utf8(buf).map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "body is not UTF-8")
                })?;
            }
            return Ok(Some(Request { method, path, body }));
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad Content-Length")
                })?;
                if content_length > MAX_BODY_BYTES {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "body too large",
                    ));
                }
            }
        }
    }
    Err(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        "too many headers",
    ))
}

/// Writes one `application/json` response and flushes. The connection
/// is marked `Connection: close`; the caller drops the stream after.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &str) -> std::io::Result<Option<Request>> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_string();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
            s.shutdown(std::net::Shutdown::Write).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let req = read_request(&mut stream);
        client.join().unwrap();
        req
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = roundtrip("POST /events HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n[1,2,3]")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/events");
        assert_eq!(req.body, "[1,2,3]");
    }

    #[test]
    fn parses_a_bodyless_get() {
        let req = roundtrip("GET /healthz HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn empty_connection_is_none() {
        assert!(roundtrip("").unwrap().is_none());
    }

    #[test]
    fn oversized_content_length_is_refused() {
        let raw = format!(
            "POST /events HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(roundtrip(&raw).is_err());
    }
}
