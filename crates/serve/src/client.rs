//! A matching one-request-per-connection HTTP client.
//!
//! The serve surface speaks `Connection: close`, so a client is three
//! steps: connect, write one request, read to EOF. This module is what
//! the `dita` replay driver and the smoke tests use to talk to a
//! running `dita serve` — same no-dependency constraint as the server
//! side.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Sends one request and returns `(status, body)`. `addr` is anything
/// resolvable (`"127.0.0.1:7117"`, a [`std::net::SocketAddr`], …).
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: dita\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed response: {raw:?}"),
            )
        })?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}
