//! The `dita serve` process: a bounded event queue in front of a
//! mutex-held [`OnlineEngine`], served by a small thread pool.
//!
//! # Ingestion and ordering
//!
//! `POST /events` only takes the queue lock: batches append atomically
//! (all events of one request are adjacent) and the call returns
//! before any engine work happens. The queue is bounded —
//! [`ServeConfig::queue_cap`] — and a batch that would overflow it is
//! refused whole with `429`, which is the backpressure contract: the
//! client retries after the next round drains the queue.
//!
//! `POST /round` drains the queue **in arrival order** into
//! [`OnlineEngine::ingest`] and then closes the round. Because every
//! queued event is stamped at apply time by the single drain loop, the
//! engine observes one total `(round, seq)` order no matter how many
//! HTTP threads accepted the uploads — which is what makes a served
//! stream replayable and snapshot/restorable bit-for-bit.
//!
//! # Snapshot lifecycle
//!
//! `POST /snapshot` folds any queued events into the engine first (a
//! snapshot must not silently drop accepted uploads), then writes the
//! versioned envelope of [`sc_sim::snapshot`] atomically. A process
//! restarted with `--restore` serves `GET /report` responses
//! byte-identical to the uninterrupted original — the serve smoke job
//! in CI diffs exactly that.

use crate::http::{read_request, write_response, Request};
use sc_assign::AlgorithmKind;
use sc_sim::{save_snapshot, EventKind, OnlineEngine, RoundReport};
use sc_types::TimeInstant;
use serde::json::Value;
use serde::Serialize as _;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Configuration of a serving process.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7117` (`:0` picks a free port).
    pub addr: String,
    /// Bound on queued-but-unapplied events; `POST /events` batches
    /// that would overflow it are refused with `429`.
    pub queue_cap: usize,
    /// HTTP worker threads (each serves one connection at a time).
    pub http_threads: usize,
    /// Assignment algorithm for rounds that don't name one.
    pub algorithm: AlgorithmKind,
    /// Where `POST /snapshot` writes (a request body may override).
    pub snapshot_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_cap: 4_096,
            http_threads: 2,
            algorithm: AlgorithmKind::Ia,
            snapshot_path: None,
        }
    }
}

/// State shared between the HTTP workers.
struct Shared {
    engine: Mutex<OnlineEngine<'static>>,
    queue: Mutex<VecDeque<EventKind>>,
    last_round: Mutex<Option<RoundReport>>,
    queue_cap: usize,
    algorithm: AlgorithmKind,
    snapshot_path: Option<PathBuf>,
    shutdown: AtomicBool,
}

/// A running serving process; dropping it without
/// [`Server::shutdown`] leaves its threads detached.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and worker threads, and returns.
    /// The engine must own its handles (`OnlineEngine<'static>`, as
    /// built by an owned/adaptive [`sc_sim::EngineBuilder`] or
    /// restored by [`sc_sim::load_snapshot`]).
    pub fn start(engine: OnlineEngine<'static>, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine: Mutex::new(engine),
            queue: Mutex::new(VecDeque::new()),
            last_round: Mutex::new(None),
            queue_cap: config.queue_cap.max(1),
            algorithm: config.algorithm,
            snapshot_path: config.snapshot_path,
            shutdown: AtomicBool::new(false),
        });

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::new();
        for _ in 0..config.http_threads.max(1) {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || loop {
                let next = rx.lock().expect("rx lock").recv();
                match next {
                    Ok(mut stream) => handle_connection(&shared, &mut stream),
                    Err(_) => break, // acceptor gone: drain and exit
                }
            }));
        }
        {
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    match stream {
                        Ok(s) => {
                            if tx.send(s).is_err() {
                                break;
                            }
                        }
                        Err(_) => continue,
                    }
                }
                // tx drops here; workers drain the channel and exit.
            }));
        }
        Ok(Server {
            addr,
            shared,
            handles,
        })
    }

    /// The bound address (useful with `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Events accepted but not yet applied by a round.
    pub fn queued_events(&self) -> usize {
        self.shared.queue.lock().expect("queue lock").len()
    }

    /// Stops accepting, joins every thread, and returns the engine —
    /// so a caller can snapshot the final state after the front closes.
    pub fn shutdown(mut self) -> OnlineEngine<'static> {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        Arc::try_unwrap(self.shared)
            .map(|s| s.engine.into_inner().expect("engine lock"))
            .unwrap_or_else(|_| panic!("serve threads still hold the engine"))
    }
}

/// Serves one connection: one request, one response, close.
fn handle_connection(shared: &Shared, stream: &mut TcpStream) {
    let request = match read_request(stream) {
        Ok(Some(r)) => r,
        Ok(None) => return,
        Err(e) => {
            let body = error_body(&e.to_string());
            let _ = write_response(stream, 400, &body);
            return;
        }
    };
    let (status, body) = route(shared, &request);
    let _ = write_response(stream, status, &body);
}

fn error_body(msg: &str) -> String {
    Value::Object(vec![("error".to_string(), Value::Str(msg.to_string()))]).to_json_string()
}

/// Dispatches one request to its endpoint handler.
fn route(shared: &Shared, request: &Request) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => healthz(shared),
        ("POST", "/events") => post_events(shared, &request.body),
        ("POST", "/round") => post_round(shared, &request.body),
        ("GET", "/report") => get_report(shared),
        ("POST", "/snapshot") => post_snapshot(shared, &request.body),
        ("GET", "/events" | "/round" | "/snapshot") | ("POST", "/healthz" | "/report") => {
            (405, error_body("method not allowed"))
        }
        _ => (404, error_body("no such endpoint")),
    }
}

fn healthz(shared: &Shared) -> (u16, String) {
    let queued = shared.queue.lock().expect("queue lock").len();
    let body = Value::Object(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("queued".to_string(), queued.to_value()),
    ]);
    (200, body.to_json_string())
}

/// `POST /events` — body is one event object or an array of them
/// (each the JSON form of [`EventKind`]). The whole batch is accepted
/// or refused: partial enqueues would make `429` retries ambiguous.
fn post_events(shared: &Shared, body: &str) -> (u16, String) {
    let value = match serde::json::parse(body) {
        Ok(v) => v,
        Err(e) => return (400, error_body(&format!("bad JSON: {e}"))),
    };
    let items: Vec<&Value> = match &value {
        Value::Array(items) => items.iter().collect(),
        Value::Object(_) => vec![&value],
        other => {
            return (
                400,
                error_body(&format!("expected event or array, got {}", other.kind())),
            )
        }
    };
    let mut events = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        match <EventKind as serde::Deserialize>::from_value(item) {
            Ok(e) => events.push(e),
            Err(e) => return (400, error_body(&format!("event {i}: {e}"))),
        }
    }

    let mut queue = shared.queue.lock().expect("queue lock");
    if queue.len() + events.len() > shared.queue_cap {
        let body = Value::Object(vec![
            ("error".to_string(), Value::Str("queue full".to_string())),
            ("queued".to_string(), queue.len().to_value()),
            ("capacity".to_string(), shared.queue_cap.to_value()),
        ]);
        return (429, body.to_json_string());
    }
    let accepted = events.len();
    queue.extend(events);
    let body = Value::Object(vec![
        ("accepted".to_string(), accepted.to_value()),
        ("queued".to_string(), queue.len().to_value()),
    ]);
    (202, body.to_json_string())
}

/// Pulls every queued event into the engine, in arrival order.
/// Returns `(applied, rejected)` counts.
fn drain_queue(shared: &Shared, engine: &mut OnlineEngine<'static>) -> (usize, usize) {
    let drained: Vec<EventKind> = {
        let mut queue = shared.queue.lock().expect("queue lock");
        queue.drain(..).collect()
    };
    let mut applied = 0usize;
    let mut rejected = 0usize;
    for kind in drained {
        if engine.ingest(kind).is_rejected() {
            rejected += 1;
        } else {
            applied += 1;
        }
    }
    (applied, rejected)
}

/// `POST /round` — body `{"day": D, "hour": H}` (or a raw second
/// stamp `{"at": S}`, which replay ticks off the hour grid need) with
/// an optional `"algorithm"` override. Drains the queue, closes the
/// round, and returns the [`RoundReport`].
fn post_round(shared: &Shared, body: &str) -> (u16, String) {
    let value = match serde::json::parse(body) {
        Ok(v) => v,
        Err(e) => return (400, error_body(&format!("bad JSON: {e}"))),
    };
    let Some(obj) = value.as_object() else {
        return (400, error_body("round body must be an object"));
    };
    let now = if obj.iter().any(|(k, _)| k == "at") {
        match serde::get_field::<i64>(obj, "at") {
            Ok(s) => TimeInstant::from_seconds(s),
            Err(e) => return (400, error_body(&e.to_string())),
        }
    } else {
        let day: i64 = match serde::get_field(obj, "day") {
            Ok(d) => d,
            Err(e) => return (400, error_body(&e.to_string())),
        };
        let hour: i64 = match serde::get_field(obj, "hour") {
            Ok(h) => h,
            Err(e) => return (400, error_body(&e.to_string())),
        };
        TimeInstant::at(day, hour)
    };
    let algorithm = match obj.iter().find(|(k, _)| k == "algorithm") {
        None => shared.algorithm,
        Some((_, Value::Str(name))) => match parse_algorithm(name) {
            Some(a) => a,
            None => return (400, error_body(&format!("unknown algorithm '{name}'"))),
        },
        Some((_, other)) => {
            return (
                400,
                error_body(&format!("algorithm must be a string, got {}", other.kind())),
            )
        }
    };

    let mut engine = shared.engine.lock().expect("engine lock");
    let (applied, rejected) = drain_queue(shared, &mut engine);
    let report = engine.run_round(now, algorithm);
    drop(engine);
    let body = Value::Object(vec![
        ("applied".to_string(), applied.to_value()),
        ("rejected".to_string(), rejected.to_value()),
        ("report".to_string(), report.to_value()),
    ]);
    *shared.last_round.lock().expect("last_round lock") = Some(report);
    (200, body.to_json_string())
}

/// `GET /report` — rounds served, lifetime summary, last round. Only
/// deterministic fields travel (the wire forms of [`RoundReport`] and
/// [`sc_sim::OnlineSummary`] exclude wall-clock and telemetry), so two
/// engines that served the same event stream — e.g. an original and
/// its restored snapshot — answer with byte-identical bodies.
fn get_report(shared: &Shared) -> (u16, String) {
    let engine = shared.engine.lock().expect("engine lock");
    let (round, _) = engine.next_stamp();
    let summary = engine.summary();
    drop(engine);
    let last = shared.last_round.lock().expect("last_round lock");
    let body = Value::Object(vec![
        ("rounds".to_string(), round.to_value()),
        ("summary".to_string(), summary.to_value()),
        (
            "last_round".to_string(),
            last.as_ref().map(|r| r.to_value()).unwrap_or(Value::Null),
        ),
    ]);
    (200, body.to_json_string())
}

/// `POST /snapshot` — optional body `{"path": "..."}` overriding the
/// configured path. Queued events are folded in first; the reply
/// reports how many.
fn post_snapshot(shared: &Shared, body: &str) -> (u16, String) {
    let override_path = if body.trim().is_empty() {
        None
    } else {
        match serde::json::parse(body) {
            Ok(v) => match v.as_object() {
                Some(obj) => match serde::get_field::<String>(obj, "path") {
                    Ok(p) => Some(PathBuf::from(p)),
                    Err(e) => return (400, error_body(&e.to_string())),
                },
                None => return (400, error_body("snapshot body must be an object")),
            },
            Err(e) => return (400, error_body(&format!("bad JSON: {e}"))),
        }
    };
    let Some(path) = override_path.or_else(|| shared.snapshot_path.clone()) else {
        return (
            400,
            error_body("no snapshot path (configure --snapshot or send {\"path\": ...})"),
        );
    };

    let mut engine = shared.engine.lock().expect("engine lock");
    let (applied, rejected) = drain_queue(shared, &mut engine);
    let result = save_snapshot(&engine, &path);
    drop(engine);
    match result {
        Ok(()) => {
            let body = Value::Object(vec![
                ("path".to_string(), Value::Str(path.display().to_string())),
                ("events_folded".to_string(), applied.to_value()),
                ("events_rejected".to_string(), rejected.to_value()),
            ]);
            (200, body.to_json_string())
        }
        Err(e) => (500, error_body(&e.to_string())),
    }
}

/// Parses the wire name of an assignment algorithm.
pub fn parse_algorithm(name: &str) -> Option<AlgorithmKind> {
    match name.to_uppercase().as_str() {
        "MTA" => Some(AlgorithmKind::Mta),
        "IA" => Some(AlgorithmKind::Ia),
        "EIA" => Some(AlgorithmKind::Eia),
        "DIA" => Some(AlgorithmKind::Dia),
        "MI" => Some(AlgorithmKind::Mi),
        "GREEDY" => Some(AlgorithmKind::GreedyNearest),
        _ => None,
    }
}
